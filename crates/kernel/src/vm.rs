//! Physical memory management with per-SPU accounting (§3.2).
//!
//! "The page allocation function in the kernel is augmented to record the
//! SPU ID of the process requesting the page, and to keep a count of the
//! pages used by each SPU. In addition to regular code and data pages,
//! SPU memory usage also includes pages used indirectly in the kernel on
//! behalf of an SPU, such as the file buffer cache ..."
//!
//! Isolation: an SPU at its allowed level must evict one of its *own*
//! pages to get a new one (dirty pages pay a swap write — the revocation
//! cost the Reserve Threshold exists to hide). Under the `SMP` scheme no
//! limits are enforced and the victim is chosen globally, reproducing the
//! unconstrained behaviour of stock IRIX.
//!
//! Shared pages: "When a page is first accessed, it is marked with the
//! SPU ID of the accessing process. On a subsequent access by a different
//! SPU before the page is freed, the page will be marked as a shared
//! page."

use spu_core::{
    ChargeError, MemPolicyInput, MemSharingPolicy, ResourceLedger, ResourceLevels, Scheme,
    ShardedLedger, SpuId, SpuSet,
};

use crate::config::SECTORS_PER_PAGE;
use crate::fs::FileId;
use crate::process::Pid;

/// Identifies a physical page frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub u32);

/// What currently lives in a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameOwner {
    /// On the free list.
    Free,
    /// Kernel code/data (charged to the kernel SPU at boot).
    Kernel,
    /// A page of a process's anonymous region.
    Anon {
        /// Owning process.
        pid: Pid,
        /// Page index within its region.
        page: u32,
    },
    /// A buffer-cache block.
    Cache {
        /// Cached file.
        file: FileId,
        /// Block index within the file.
        block: u64,
    },
}

/// One physical page frame.
#[derive(Clone, Copy, Debug)]
pub struct Frame {
    /// Contents.
    pub owner: FrameOwner,
    /// The SPU charged for this frame.
    pub spu: SpuId,
    /// Whether the contents differ from their backing store.
    pub dirty: bool,
    /// Pinned frames (in-flight I/O) are skipped by victim selection.
    pub pinned: bool,
    /// Global allocation-age stamp (drives global-FIFO victimization
    /// under the `SMP` scheme, approximating IRIX's global paging).
    pub stamp: u64,
}

/// What was evicted to satisfy an allocation; the kernel must update the
/// corresponding page table or cache map and issue the writeback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted contents.
    pub owner: FrameOwner,
    /// The SPU that was paying for the frame.
    pub spu: SpuId,
    /// Whether a writeback is required.
    pub dirty: bool,
}

/// Result of a frame acquisition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Acquired {
    /// A frame was obtained; `evicted` reports what was displaced (if
    /// anything).
    Frame {
        /// The newly owned frame.
        frame: FrameId,
        /// The displaced contents, if the frame was stolen.
        evicted: Option<Evicted>,
    },
    /// No frame could be obtained (every candidate pinned); the caller
    /// must block the process and retry after I/O completes.
    Denied,
}

/// Per-SPU VM event counters.
#[derive(Clone, Debug, Default)]
pub struct VmSpuStats {
    /// Zero-fill (first touch) faults.
    pub minor_faults: u64,
    /// Swap-in faults.
    pub major_faults: u64,
    /// Pages written to swap on eviction.
    pub swap_outs: u64,
    /// Frame acquisitions refused outright.
    pub denials: u64,
}

/// The physical memory manager.
///
/// # Examples
///
/// ```
/// use smp_kernel::{FrameOwner, MemoryManager, Pid};
/// use spu_core::{Scheme, SpuId, SpuSet};
///
/// let spus = SpuSet::equal_users(2);
/// let mut vm = MemoryManager::new(1024, &spus, Scheme::PIso, 0.10, 0.08);
/// let got = vm.acquire_frame(
///     SpuId::user(0),
///     FrameOwner::Anon { pid: Pid(1), page: 0 },
/// );
/// assert!(matches!(got, smp_kernel::Acquired::Frame { evicted: None, .. }));
/// ```
#[derive(Debug)]
pub struct MemoryManager {
    // Frame metadata as a dense struct-of-arrays, directly indexed by
    // `FrameId`: the fault path touches only the columns it needs
    // (owner+flags on the victim walk, stamps on touch) instead of
    // dragging whole `Frame` structs through the cache.
    owners: Vec<FrameOwner>,
    frame_spu: Vec<SpuId>,
    /// Per-frame flag bits ([`DIRTY`] | [`PINNED`]).
    flags: Vec<u8>,
    /// Reference-epoch stamps (refreshed on touch; drive SMP global LRU).
    stamps: Vec<u64>,
    /// Residency-arrival epochs (set on enqueue; order victim selection).
    arrivals: Vec<u64>,
    /// Intrusive doubly-linked residency-list links, `NIL`-terminated.
    next: Vec<u32>,
    prev: Vec<u32>,
    free: Vec<FrameId>,
    /// Per-CPU sharded page accounting: the fault path charges the
    /// faulting CPU's shard; deltas fold into the global ledger at
    /// policy-pass boundaries. Every decision reads the exact
    /// (global + pending) view, so sharding never changes behaviour.
    ledger: ShardedLedger,
    /// Per-SPU residency lists in arrival order, one per victim class
    /// (`[CACHE_CLASS]`, `[ANON_CLASS]`), threaded through `next`/`prev`.
    /// Frames are unlinked eagerly on eviction/release/share transfer, so
    /// the lists never hold stale entries and the "first eligible victim"
    /// walk skips at most the pinned prefix — O(1) amortized instead of
    /// the old scan past stale and pinned entries.
    lists: Vec<[ResidentList; 2]>,
    /// Number of buffer-cache frames each SPU currently owns — the cache
    /// class's occupancy counter, letting the victim selector skip the
    /// cache walk entirely when an SPU has none.
    cache_frames: Vec<u64>,
    policy: MemSharingPolicy,
    scheme: Scheme,
    spus: SpuSet,
    pressure: Vec<bool>,
    stats: Vec<VmSpuStats>,
    swap_cursor: u64,
    charge_seq: u64,
}

/// `flags` bit: contents differ from backing store.
const DIRTY: u8 = 1 << 0;
/// `flags` bit: in-flight I/O; skipped by victim selection.
const PINNED: u8 = 1 << 1;

/// Victim-class index: buffer-cache frames (preferred victims).
const CACHE_CLASS: usize = 0;
/// Victim-class index: anonymous frames.
const ANON_CLASS: usize = 1;

/// Null link in the intrusive residency lists.
const NIL: u32 = u32::MAX;

/// Head/tail of one per-SPU, per-class residency list.
#[derive(Clone, Copy, Debug)]
struct ResidentList {
    head: u32,
    tail: u32,
}

impl Default for ResidentList {
    fn default() -> Self {
        ResidentList {
            head: NIL,
            tail: NIL,
        }
    }
}

impl MemoryManager {
    /// Creates a manager over `total_frames` frames.
    ///
    /// `kernel_frac` of memory is charged to the kernel SPU at boot;
    /// `reserve_frac` is the Reserve Threshold (§3.2).
    pub fn new(
        total_frames: u64,
        spus: &SpuSet,
        scheme: Scheme,
        kernel_frac: f64,
        reserve_frac: f64,
    ) -> Self {
        Self::with_shards(total_frames, spus, scheme, kernel_frac, reserve_frac, 0)
    }

    /// Creates a manager whose ledger has `shards` per-CPU accumulation
    /// shards (plus the built-in detached shard for CPU-less contexts).
    /// The kernel passes its CPU count; standalone use can pass 0.
    pub fn with_shards(
        total_frames: u64,
        spus: &SpuSet,
        scheme: Scheme,
        kernel_frac: f64,
        reserve_frac: f64,
        shards: usize,
    ) -> Self {
        let n_spus = spus.total_count();
        let n = total_frames as usize;
        let mut vm = MemoryManager {
            owners: vec![FrameOwner::Free; n],
            frame_spu: vec![SpuId::KERNEL; n],
            flags: vec![0; n],
            stamps: vec![0; n],
            arrivals: vec![0; n],
            next: vec![NIL; n],
            prev: vec![NIL; n],
            free: (0..total_frames as u32).rev().map(FrameId).collect(),
            ledger: ShardedLedger::new(total_frames, n_spus, shards),
            lists: vec![[ResidentList::default(); 2]; n_spus],
            cache_frames: vec![0; n_spus],
            policy: MemSharingPolicy::new(reserve_frac),
            scheme,
            spus: spus.clone(),
            pressure: vec![false; n_spus],
            stats: vec![VmSpuStats::default(); n_spus],
            swap_cursor: 0,
            charge_seq: 0,
        };
        // Boot-time kernel memory (code, data, static tables). Kernel
        // frames never enter a residency list (never paged).
        let kernel_frames = (total_frames as f64 * kernel_frac).round() as u64;
        let boot = vm.ledger.detached_shard();
        for _ in 0..kernel_frames {
            let f = vm.free.pop().expect("kernel fraction must fit");
            vm.ledger.charge_on(boot, SpuId::KERNEL, 1, false).unwrap();
            let i = f.0 as usize;
            vm.owners[i] = FrameOwner::Kernel;
            vm.frame_spu[i] = SpuId::KERNEL;
            vm.flags[i] = PINNED;
        }
        vm.run_policy();
        vm
    }

    /// The victim class a resident owner files under.
    #[inline]
    fn class_of(owner: FrameOwner) -> usize {
        match owner {
            FrameOwner::Cache { .. } => CACHE_CLASS,
            _ => ANON_CLASS,
        }
    }

    /// Appends a frame to the tail of an SPU's class list.
    #[inline]
    fn push_resident(&mut self, spu: SpuId, class: usize, id: FrameId) {
        let i = id.0 as usize;
        let list = &mut self.lists[spu.index()][class];
        self.prev[i] = list.tail;
        self.next[i] = NIL;
        if list.tail == NIL {
            list.head = id.0;
        } else {
            self.next[list.tail as usize] = id.0;
        }
        list.tail = id.0;
        self.charge_seq += 1;
        self.arrivals[i] = self.charge_seq;
    }

    /// Unlinks a frame from an SPU's class list.
    #[inline]
    fn unlink_resident(&mut self, spu: SpuId, class: usize, id: FrameId) {
        let i = id.0 as usize;
        let (p, n) = (self.prev[i], self.next[i]);
        let list = &mut self.lists[spu.index()][class];
        if p == NIL {
            list.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            list.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.prev[i] = NIL;
        self.next[i] = NIL;
    }

    /// The first unpinned frame of an SPU's class list, in arrival order.
    #[inline]
    fn first_unpinned(&self, spu: SpuId, class: usize) -> Option<FrameId> {
        let mut cur = self.lists[spu.index()][class].head;
        while cur != NIL {
            if self.flags[cur as usize] & PINNED == 0 {
                return Some(FrameId(cur));
            }
            cur = self.next[cur as usize];
        }
        None
    }

    /// Whether per-SPU limits are enforced (everything but `SMP`).
    fn enforce(&self) -> bool {
        self.scheme.sharing().enforces()
    }

    /// A frame's metadata, assembled from the struct-of-arrays columns.
    pub fn frame(&self, id: FrameId) -> Frame {
        let i = id.0 as usize;
        Frame {
            owner: self.owners[i],
            spu: self.frame_spu[i],
            dirty: self.flags[i] & DIRTY != 0,
            pinned: self.flags[i] & PINNED != 0,
            stamp: self.stamps[i],
        }
    }

    /// Sets a frame's dirty flag.
    pub fn set_dirty(&mut self, id: FrameId, dirty: bool) {
        if dirty {
            self.flags[id.0 as usize] |= DIRTY;
        } else {
            self.flags[id.0 as usize] &= !DIRTY;
        }
    }

    /// Pins or unpins a frame (pinned frames are not eviction victims).
    /// The frame keeps its residency-list position, so unpinning restores
    /// its original victim priority.
    pub fn set_pinned(&mut self, id: FrameId, pinned: bool) {
        if pinned {
            self.flags[id.0 as usize] |= PINNED;
        } else {
            self.flags[id.0 as usize] &= !PINNED;
        }
    }

    /// Records a reference to a resident frame, refreshing its age stamp
    /// so global victimization (SMP mode) approximates LRU rather than
    /// punishing long-resident hot pages.
    #[inline]
    pub fn touch_frame(&mut self, id: FrameId) {
        self.charge_seq += 1;
        self.stamps[id.0 as usize] = self.charge_seq;
    }

    /// The levels record of an SPU (exact view: global + pending).
    pub fn levels(&self, spu: SpuId) -> ResourceLevels {
        self.ledger.levels(spu)
    }

    /// Read access to the global page-frame ledger (for invariant
    /// auditing). Callers that need exactness must
    /// [`fold_ledger`](Self::fold_ledger) first.
    pub fn ledger(&self) -> &ResourceLedger {
        self.ledger.global()
    }

    /// Folds all per-CPU shard deltas into the global ledger, verifying
    /// per-SPU conservation. Called at policy-pass boundaries.
    pub fn fold_ledger(&mut self) {
        self.ledger.fold();
    }

    /// Number of shard folds performed (observability).
    pub fn ledger_folds(&self) -> u64 {
        self.ledger.folds()
    }

    /// Free frame count.
    pub fn free_frames(&self) -> u64 {
        self.ledger.free()
    }

    /// Per-SPU statistics.
    pub fn stats(&self, spu: SpuId) -> &VmSpuStats {
        &self.stats[spu.index()]
    }

    /// Records a fault for statistics (`major` = swap-in).
    pub fn count_fault(&mut self, spu: SpuId, major: bool) {
        if major {
            self.stats[spu.index()].major_faults += 1;
        } else {
            self.stats[spu.index()].minor_faults += 1;
        }
    }

    /// Acquires one frame charged to `spu` with the given contents.
    ///
    /// Free frames are used when the SPU has headroom; otherwise a victim
    /// is evicted — from the SPU's own pages when it is at its allowed
    /// level (isolation), from the globally most-over-budget SPU when the
    /// machine is simply out of free frames.
    pub fn acquire_frame(&mut self, spu: SpuId, owner: FrameOwner) -> Acquired {
        let shard = self.ledger.detached_shard();
        self.acquire_frame_on(shard, spu, owner)
    }

    /// [`acquire_frame`](Self::acquire_frame) accumulating the charge on
    /// `shard` — the faulting CPU's shard on the hot fault path.
    pub fn acquire_frame_on(&mut self, shard: usize, spu: SpuId, owner: FrameOwner) -> Acquired {
        let sharing = self.scheme.sharing();
        let evicted = match sharing.can_charge_sharded(&self.ledger, spu, 1) {
            Ok(()) => None,
            Err(ChargeError::OverAllowed { .. }) => {
                // At the allowed level: steal one of this SPU's own pages.
                self.pressure[spu.index()] = true;
                match self.pop_victim(shard, spu) {
                    Some(v) => Some(v),
                    None => {
                        self.stats[spu.index()].denials += 1;
                        return Acquired::Denied;
                    }
                }
            }
            Err(ChargeError::Exhausted) => {
                self.pressure[spu.index()] = true;
                let victim_spu = self.global_victim_spu(spu);
                match victim_spu.and_then(|vs| self.pop_victim(shard, vs)) {
                    Some(v) => Some(v),
                    None => {
                        self.stats[spu.index()].denials += 1;
                        return Acquired::Denied;
                    }
                }
            }
        };
        let frame = if let Some(ev) = evicted {
            // The frame was released by pop_victim; take it off the free
            // list (it is the most recently pushed).
            let f = self.free.pop().expect("victim frame must be free");
            if ev.owner == FrameOwner::Free {
                unreachable!("victims are never free frames");
            }
            f
        } else {
            match self.free.pop() {
                Some(f) => f,
                None => {
                    // Ledger says there is capacity but all free frames
                    // are spoken for — evict globally.
                    match self
                        .global_victim_spu(spu)
                        .and_then(|vs| self.pop_victim(shard, vs))
                    {
                        Some(_v) => self.free.pop().expect("victim frame must be free"),
                        None => {
                            self.stats[spu.index()].denials += 1;
                            return Acquired::Denied;
                        }
                    }
                }
            }
        };
        self.ledger
            .charge_on(shard, spu, 1, false)
            .expect("capacity was verified");
        self.charge_seq += 1;
        let i = frame.0 as usize;
        self.owners[i] = owner;
        self.frame_spu[i] = spu;
        self.flags[i] = 0;
        self.stamps[i] = self.charge_seq;
        let class = Self::class_of(owner);
        if class == CACHE_CLASS {
            self.cache_frames[spu.index()] += 1;
        }
        self.push_resident(spu, class, frame);
        Acquired::Frame { frame, evicted }
    }

    /// Pops the next unpinned victim frame of `spu`, preferring cache
    /// pages over anonymous pages, releases its charge and frees it.
    /// Returns what was evicted.
    ///
    /// Because the class lists are arrival-ordered and hold no stale
    /// entries, this is a head pop past (at most) a pinned prefix —
    /// O(1) amortized. The cache-occupancy counter skips the cache walk
    /// entirely for SPUs holding no cache frames.
    fn pop_victim(&mut self, shard: usize, spu: SpuId) -> Option<Evicted> {
        let chosen = if self.cache_frames[spu.index()] > 0 {
            self.first_unpinned(spu, CACHE_CLASS)
                .or_else(|| self.first_unpinned(spu, ANON_CLASS))
        } else {
            self.first_unpinned(spu, ANON_CLASS)
        };
        let fid = chosen?;
        let i = fid.0 as usize;
        let owner = self.owners[i];
        let ev = Evicted {
            owner,
            spu: self.frame_spu[i],
            dirty: self.flags[i] & DIRTY != 0,
        };
        let class = Self::class_of(owner);
        self.unlink_resident(spu, class, fid);
        if ev.dirty && matches!(owner, FrameOwner::Anon { .. }) {
            self.stats[spu.index()].swap_outs += 1;
        }
        if class == CACHE_CLASS {
            self.cache_frames[spu.index()] -= 1;
        }
        self.ledger.release_on(shard, spu, 1);
        self.owners[i] = FrameOwner::Free;
        self.frame_spu[i] = spu;
        self.flags[i] = 0;
        self.free.push(fid);
        Some(ev)
    }

    /// The SPU to steal a frame from when the machine is out of free
    /// frames. Under isolation schemes: the most over-allowance SPU.
    /// Under `SMP`: the SPU holding the globally oldest resident frame —
    /// global FIFO, approximating IRIX's global paging, which steals from
    /// every process regardless of owner. Never steals from the kernel or
    /// an empty SPU.
    fn global_victim_spu(&mut self, _for_spu: SpuId) -> Option<SpuId> {
        // Candidate ids are generated index-by-index rather than collected
        // into a Vec: this runs on every frame steal under memory pressure.
        let users = self.spus.user_count() as u32;
        let candidates = (0..users)
            .map(SpuId::user)
            .chain(std::iter::once(SpuId::SHARED));
        if self.enforce() {
            let mut best: Option<(i64, u64, SpuId)> = None;
            for id in candidates {
                let l = self.ledger.levels(id);
                if l.used == 0 {
                    continue;
                }
                let over = l.used as i64 - l.allowed as i64;
                let key = (over, l.used, id);
                if best.is_none_or(|b| (key.0, key.1) > (b.0, b.1)) {
                    best = Some(key);
                }
            }
            best.map(|(_, _, id)| id)
        } else {
            let mut best: Option<(u64, SpuId)> = None;
            for id in candidates {
                if let Some(stamp) = self.oldest_resident_stamp(id) {
                    if best.is_none_or(|(bs, _)| stamp < bs) {
                        best = Some((stamp, id));
                    }
                }
            }
            best.map(|(_, id)| id)
        }
    }

    /// The stamp of the oldest evictable resident frame of an SPU — the
    /// first unpinned frame in arrival order across both class lists
    /// (the class split preserves relative arrival order within each
    /// class, so the earlier of the two heads is the merged-order first).
    fn oldest_resident_stamp(&self, spu: SpuId) -> Option<u64> {
        let cache = self.first_unpinned(spu, CACHE_CLASS);
        let anon = self.first_unpinned(spu, ANON_CLASS);
        let fid = match (cache, anon) {
            (Some(c), Some(a)) => {
                if self.arrivals[c.0 as usize] < self.arrivals[a.0 as usize] {
                    c
                } else {
                    a
                }
            }
            (Some(c), None) => c,
            (None, Some(a)) => a,
            (None, None) => return None,
        };
        Some(self.stamps[fid.0 as usize])
    }

    /// Releases a frame entirely (process exit, cache drop).
    ///
    /// # Panics
    ///
    /// Panics if the frame is already free.
    pub fn release_frame(&mut self, id: FrameId) {
        let i = id.0 as usize;
        let owner = self.owners[i];
        assert!(!matches!(owner, FrameOwner::Free), "double free of {id:?}");
        let spu = self.frame_spu[i];
        let class = Self::class_of(owner);
        if !matches!(owner, FrameOwner::Kernel) {
            self.unlink_resident(spu, class, id);
        }
        self.owners[i] = FrameOwner::Free;
        self.flags[i] = 0;
        if matches!(owner, FrameOwner::Cache { .. }) {
            self.cache_frames[spu.index()] -= 1;
        }
        let shard = self.ledger.detached_shard();
        self.ledger.release_on(shard, spu, 1);
        self.free.push(id);
    }

    /// Re-marks a frame as shared (§3.2): transfers its charge from its
    /// current user SPU to the shared SPU. No-op if it is already
    /// kernel/shared-owned.
    pub fn mark_shared(&mut self, id: FrameId) {
        let i = id.0 as usize;
        if !self.frame_spu[i].is_user() {
            return;
        }
        let from = self.frame_spu[i];
        let class = Self::class_of(self.owners[i]);
        // Re-file under the shared SPU at the tail of its class list —
        // the same position the old lazy-pruned queue gave it.
        self.unlink_resident(from, class, id);
        self.frame_spu[i] = SpuId::SHARED;
        if class == CACHE_CLASS {
            self.cache_frames[from.index()] -= 1;
            self.cache_frames[SpuId::SHARED.index()] += 1;
        }
        let shard = self.ledger.detached_shard();
        self.ledger.transfer_on(shard, from, SpuId::SHARED, 1);
        self.push_resident(SpuId::SHARED, class, id);
    }

    /// Allocates `pages` contiguous swap slots and returns the starting
    /// sector (swap slots are bump-allocated; the swap area is assumed
    /// large).
    pub fn alloc_swap_run(&mut self, pages: u32) -> u64 {
        let start = self.swap_cursor;
        self.swap_cursor += pages as u64 * SECTORS_PER_PAGE as u64;
        start
    }

    /// Frees every anonymous frame of an exiting process by scanning the
    /// owner column. The kernel's exit path releases through the page
    /// slab instead (O(pages), not O(frames)); this scan remains for
    /// callers without a page table.
    pub fn free_process_frames(&mut self, pid: Pid) {
        for i in 0..self.owners.len() {
            if let FrameOwner::Anon { pid: p, .. } = self.owners[i] {
                if p == pid {
                    self.release_frame(FrameId(i as u32));
                }
            }
        }
    }

    /// Runs the periodic sharing policy (§3.2): recomputes entitlements
    /// net of kernel/shared usage, then asks the scheme's
    /// [`SharingPolicy`](spu_core::SharingPolicy) for new allowed levels
    /// — idle pages flow to pressured SPUs under `PIso`, allowed snaps
    /// back to entitled under `Quota`/`SMP` — and clears the pressure
    /// flags.
    pub fn run_policy(&mut self) {
        // Policy-pass boundary: reconcile per-CPU shard deltas first so
        // the global ledger the pass (and any auditor after it) sees is
        // exact.
        self.ledger.fold();
        let capacity = self.ledger.capacity();
        let kernel_used = self.ledger.used(SpuId::KERNEL);
        let shared_used = self.ledger.used(SpuId::SHARED);
        let user_pages = capacity.saturating_sub(kernel_used + shared_used);
        let sharing = self.scheme.sharing();
        let entitled = self.spus.split_memory(user_pages);
        for (i, id) in self.spus.user_ids().enumerate() {
            sharing.entitle_sharded(&mut self.ledger, id, entitled[i]);
        }
        let inputs: Vec<MemPolicyInput> = self
            .spus
            .user_ids()
            .map(|id| MemPolicyInput {
                spu: id,
                levels: self.ledger.levels(id),
                pressured: self.pressure[id.index()],
            })
            .collect();
        // The env lookup is cached: getenv on every policy pass (one per
        // 100 ms of sim time) is visible in paging-heavy profiles.
        static VMTRACE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        if *VMTRACE.get_or_init(|| std::env::var("VMTRACE").is_ok()) {
            eprintln!(
                "policy: {:?}",
                inputs
                    .iter()
                    .map(|i| (
                        i.spu.to_string(),
                        i.levels.entitled,
                        i.levels.used,
                        i.pressured
                    ))
                    .collect::<Vec<_>>()
            );
        }
        let reserve = self.policy.reserve_pages(user_pages);
        // On hierarchical SPU sets idle pages flow to pressured siblings
        // inside a tenant before escaping to other tenants; on flat sets
        // (tree = None) this is exactly the old machine-wide lend.
        for (spu, allowed) in
            sharing.lend_idle_scoped(user_pages, reserve, &inputs, self.spus.tree())
        {
            self.ledger.set_allowed(spu, allowed);
        }
        for p in &mut self.pressure {
            *p = false;
        }
    }

    /// Debug invariants: ledger consistent with frame ownership (the
    /// exact view, so unfolded shard deltas are accounted).
    pub fn check_invariants(&self) {
        self.ledger.check_invariants();
        let mut counted = vec![0u64; self.spus.total_count()];
        let mut free = 0u64;
        for (i, owner) in self.owners.iter().enumerate() {
            match owner {
                FrameOwner::Free => free += 1,
                _ => counted[self.frame_spu[i].index()] += 1,
            }
        }
        assert_eq!(free, self.ledger.free(), "free count mismatch");
        for id in self.spus.all_ids() {
            assert_eq!(
                counted[id.index()],
                self.ledger.used(id),
                "ledger mismatch for {id}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(frames: u64, scheme: Scheme) -> MemoryManager {
        MemoryManager::new(frames, &SpuSet::equal_users(2), scheme, 0.10, 0.08)
    }

    fn anon(pid: u32, page: u32) -> FrameOwner {
        FrameOwner::Anon {
            pid: Pid(pid),
            page,
        }
    }

    #[test]
    fn boot_charges_kernel_memory() {
        let vm = vm(1000, Scheme::PIso);
        assert_eq!(vm.levels(SpuId::KERNEL).used, 100);
        assert_eq!(vm.free_frames(), 900);
        // User entitlements split the rest.
        assert_eq!(vm.levels(SpuId::user(0)).entitled, 450);
        assert_eq!(vm.levels(SpuId::user(1)).entitled, 450);
    }

    #[test]
    fn acquire_until_limit_then_self_evict() {
        let mut vm = vm(1000, Scheme::PIso);
        let allowed = vm.levels(SpuId::user(0)).allowed;
        for i in 0..allowed {
            match vm.acquire_frame(SpuId::user(0), anon(1, i as u32)) {
                Acquired::Frame { evicted: None, .. } => {}
                other => panic!("unexpected at {i}: {other:?}"),
            }
        }
        // Next acquisition must evict one of the SPU's own pages.
        match vm.acquire_frame(SpuId::user(0), anon(1, allowed as u32)) {
            Acquired::Frame {
                evicted: Some(ev), ..
            } => {
                assert_eq!(ev.spu, SpuId::user(0));
                assert!(matches!(ev.owner, FrameOwner::Anon { .. }));
            }
            other => panic!("expected eviction: {other:?}"),
        }
        assert_eq!(vm.levels(SpuId::user(0)).used, allowed);
        vm.check_invariants();
    }

    #[test]
    fn smp_mode_steals_globally() {
        let mut vm = vm(1000, Scheme::Smp);
        // user0 fills all 900 free frames (no limits under SMP).
        for i in 0..900 {
            assert!(matches!(
                vm.acquire_frame(SpuId::user(0), anon(1, i)),
                Acquired::Frame { evicted: None, .. }
            ));
        }
        // user1's first page steals from user0.
        match vm.acquire_frame(SpuId::user(1), anon(2, 0)) {
            Acquired::Frame {
                evicted: Some(ev), ..
            } => assert_eq!(ev.spu, SpuId::user(0)),
            other => panic!("{other:?}"),
        }
        vm.check_invariants();
    }

    #[test]
    fn piso_policy_lends_idle_pages() {
        let mut vm = vm(1000, Scheme::PIso);
        let entitled = vm.levels(SpuId::user(0)).entitled;
        // user0 hits its limit (sets the pressure flag)...
        for i in 0..entitled {
            vm.acquire_frame(SpuId::user(0), anon(1, i as u32));
        }
        assert!(matches!(
            vm.acquire_frame(SpuId::user(0), anon(1, entitled as u32)),
            Acquired::Frame {
                evicted: Some(_),
                ..
            }
        ));
        // ...while user1 is idle. The policy raises user0's allowed level.
        vm.run_policy();
        let l = vm.levels(SpuId::user(0));
        assert!(l.allowed > l.entitled, "no lending happened: {:?}", l);
        // And user0 can now grow without evicting.
        assert!(matches!(
            vm.acquire_frame(SpuId::user(0), anon(1, entitled as u32 + 1)),
            Acquired::Frame { evicted: None, .. }
        ));
    }

    #[test]
    fn hierarchical_lending_prefers_sibling_pages() {
        use spu_core::SpuTree;
        // acme = {user0, user1}, globex = {user2}. user1 is idle; both
        // user0 (sibling) and user2 (stranger) are pressured.
        let spus = SpuSet::with_weights(&[1, 1, 1]).with_tree(SpuTree::new(vec![
            ("acme".into(), 2, vec![0, 1]),
            ("globex".into(), 1, vec![2]),
        ]));
        let mut vm = MemoryManager::new(1000, &spus, Scheme::PIso, 0.10, 0.08);
        for (user, pid) in [(0, 1), (2, 3)] {
            let entitled = vm.levels(SpuId::user(user)).entitled;
            for i in 0..=entitled {
                vm.acquire_frame(SpuId::user(user), anon(pid, i as u32));
            }
        }
        vm.run_policy();
        let loan = |u: u32| {
            let l = vm.levels(SpuId::user(u));
            l.allowed - l.entitled
        };
        // The sibling claims acme's idle pages before anything escapes
        // to globex.
        assert!(loan(0) > 0, "sibling got nothing");
        assert!(
            loan(0) > loan(2),
            "sibling must be preferred: {} vs {}",
            loan(0),
            loan(2)
        );
        vm.check_invariants();
    }

    #[test]
    fn quota_policy_never_lends() {
        let mut vm = vm(1000, Scheme::Quota);
        let entitled = vm.levels(SpuId::user(0)).entitled;
        for i in 0..entitled {
            vm.acquire_frame(SpuId::user(0), anon(1, i as u32));
        }
        vm.acquire_frame(SpuId::user(0), anon(1, entitled as u32)); // pressure
        vm.run_policy();
        let l = vm.levels(SpuId::user(0));
        assert_eq!(l.allowed, l.entitled);
    }

    #[test]
    fn lender_gets_pages_back() {
        let mut vm = vm(1000, Scheme::PIso);
        let entitled = vm.levels(SpuId::user(0)).entitled;
        // user0 borrows beyond its entitlement.
        for i in 0..entitled + 100 {
            vm.acquire_frame(SpuId::user(0), anon(1, i as u32));
        }
        vm.run_policy(); // pressure -> lend
        for i in 0..100 {
            vm.acquire_frame(SpuId::user(0), anon(1, (entitled + 100 + i) as u32));
        }
        // Now user1 wants its memory: policy next period stops lending
        // (user1 pressure, user0 beyond entitlement).
        for i in 0..50 {
            vm.acquire_frame(SpuId::user(1), anon(2, i));
        }
        vm.run_policy();
        let l0 = vm.levels(SpuId::user(0));
        // user0's allowed is back at entitled: it must self-evict now.
        assert_eq!(l0.allowed, l0.entitled);
        match vm.acquire_frame(SpuId::user(0), anon(1, 9999)) {
            Acquired::Frame {
                evicted: Some(ev), ..
            } => assert_eq!(ev.spu, SpuId::user(0)),
            other => panic!("{other:?}"),
        }
        vm.check_invariants();
    }

    #[test]
    fn cache_pages_are_preferred_victims() {
        let mut vm = vm(1000, Scheme::PIso);
        let allowed = vm.levels(SpuId::user(0)).allowed;
        // Fill with anon, then one cache page in the middle of the queue.
        for i in 0..allowed - 1 {
            vm.acquire_frame(SpuId::user(0), anon(1, i as u32));
        }
        vm.acquire_frame(
            SpuId::user(0),
            FrameOwner::Cache {
                file: FileId(0),
                block: 0,
            },
        );
        match vm.acquire_frame(SpuId::user(0), anon(1, 9999)) {
            Acquired::Frame {
                evicted: Some(ev), ..
            } => {
                assert!(
                    matches!(ev.owner, FrameOwner::Cache { .. }),
                    "should prefer cache victim: {ev:?}"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pinned_frames_are_skipped() {
        let mut vm = vm(1000, Scheme::PIso);
        let allowed = vm.levels(SpuId::user(0)).allowed;
        let mut first = None;
        for i in 0..allowed {
            if let Acquired::Frame { frame, .. } =
                vm.acquire_frame(SpuId::user(0), anon(1, i as u32))
            {
                if first.is_none() {
                    first = Some(frame);
                }
            }
        }
        vm.set_pinned(first.unwrap(), true);
        match vm.acquire_frame(SpuId::user(0), anon(1, 9999)) {
            Acquired::Frame {
                evicted: Some(ev), ..
            } => {
                // The first (pinned) page survived; the second was taken.
                assert!(
                    matches!(ev.owner, FrameOwner::Anon { page: 1, .. }),
                    "{ev:?}"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn denied_when_everything_pinned() {
        let mut vm = MemoryManager::new(20, &SpuSet::equal_users(1), Scheme::PIso, 0.0, 0.0);
        let allowed = vm.levels(SpuId::user(0)).allowed;
        let mut frames = Vec::new();
        for i in 0..allowed {
            if let Acquired::Frame { frame, .. } =
                vm.acquire_frame(SpuId::user(0), anon(1, i as u32))
            {
                frames.push(frame);
            }
        }
        for f in &frames {
            vm.set_pinned(*f, true);
        }
        assert_eq!(
            vm.acquire_frame(SpuId::user(0), anon(1, 999)),
            Acquired::Denied
        );
        assert_eq!(vm.stats(SpuId::user(0)).denials, 1);
    }

    #[test]
    fn mark_shared_transfers_charge() {
        let mut vm = vm(1000, Scheme::PIso);
        let frame = match vm.acquire_frame(
            SpuId::user(0),
            FrameOwner::Cache {
                file: FileId(0),
                block: 0,
            },
        ) {
            Acquired::Frame { frame, .. } => frame,
            other => panic!("{other:?}"),
        };
        let before = vm.levels(SpuId::user(0)).used;
        vm.mark_shared(frame);
        assert_eq!(vm.levels(SpuId::user(0)).used, before - 1);
        assert_eq!(vm.levels(SpuId::SHARED).used, 1);
        assert_eq!(vm.frame(frame).spu, SpuId::SHARED);
        // Idempotent for non-user frames.
        vm.mark_shared(frame);
        assert_eq!(vm.levels(SpuId::SHARED).used, 1);
        vm.check_invariants();
    }

    #[test]
    fn release_and_reuse() {
        let mut vm = vm(1000, Scheme::PIso);
        let frame = match vm.acquire_frame(SpuId::user(0), anon(1, 0)) {
            Acquired::Frame { frame, .. } => frame,
            other => panic!("{other:?}"),
        };
        let free_before = vm.free_frames();
        vm.release_frame(frame);
        assert_eq!(vm.free_frames(), free_before + 1);
        vm.check_invariants();
    }

    #[test]
    fn free_process_frames_releases_only_that_pid() {
        let mut vm = vm(1000, Scheme::PIso);
        for i in 0..10 {
            vm.acquire_frame(SpuId::user(0), anon(1, i));
            vm.acquire_frame(SpuId::user(1), anon(2, i));
        }
        vm.free_process_frames(Pid(1));
        assert_eq!(vm.levels(SpuId::user(0)).used, 0);
        assert_eq!(vm.levels(SpuId::user(1)).used, 10);
        vm.check_invariants();
    }

    #[test]
    fn swap_runs_are_contiguous_and_disjoint() {
        let mut vm = vm(100, Scheme::PIso);
        let a = vm.alloc_swap_run(4);
        let b = vm.alloc_swap_run(2);
        assert_eq!(b, a + 4 * SECTORS_PER_PAGE as u64);
    }

    #[test]
    fn entitlements_track_shared_usage() {
        let mut vm = vm(1000, Scheme::PIso);
        let before = vm.levels(SpuId::user(0)).entitled;
        // Grow the shared SPU by 100 pages.
        for i in 0..100 {
            let f = match vm.acquire_frame(
                SpuId::user(0),
                FrameOwner::Cache {
                    file: FileId(0),
                    block: i,
                },
            ) {
                Acquired::Frame { frame, .. } => frame,
                other => panic!("{other:?}"),
            };
            vm.mark_shared(f);
        }
        vm.run_policy();
        let after = vm.levels(SpuId::user(0)).entitled;
        assert_eq!(before - after, 50, "shared cost split across user SPUs");
    }
}
