//! Kernel semaphores (§3.4).
//!
//! "We encountered and fixed two such semaphore problems ... The first was
//! the inode-lock semaphore that protects inodes in the file system. ...
//! We changed this from a mutual exclusion semaphore to a
//! multiple-readers/one-writer semaphore because the dominant operation
//! is lookups to the inode."
//!
//! [`LockTable`] implements both modes: with `force_exclusive` set (stock
//! IRIX 5.3) every acquisition is exclusive; otherwise shared
//! acquisitions coexist (the paper's fix). The contention statistics feed
//! the §3.4 ablation, which the paper reports improved response time by
//! 20–30% on some four-processor workloads.

use std::collections::VecDeque;

use crate::fs::FileId;
use crate::process::Pid;

/// Identifies a kernel lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

impl LockId {
    /// The root-directory inode lock, taken by every pathname lookup —
    /// the §3.4 contention hotspot.
    pub const ROOT: LockId = LockId(0);

    /// The inode lock of a particular file.
    pub const fn inode(file: FileId) -> LockId {
        LockId(file.0 + 1)
    }
}

#[derive(Debug, Default)]
struct LockState {
    // Holder identity (not just a count) so that crash recovery can
    // release everything a dead process held.
    shared_holders: Vec<Pid>,
    exclusive_holder: Option<Pid>,
    waiters: VecDeque<(Pid, bool)>,
}

impl LockState {
    fn is_free(&self) -> bool {
        self.shared_holders.is_empty() && self.exclusive_holder.is_none()
    }
}

/// All kernel locks, with contention accounting.
///
/// # Examples
///
/// ```
/// use smp_kernel::{LockId, LockTable, Pid};
///
/// let mut locks = LockTable::new(false); // multi-reader mode (§3.4 fix)
/// assert!(locks.acquire(LockId::ROOT, Pid(1), false));
/// assert!(locks.acquire(LockId::ROOT, Pid(2), false)); // readers share
/// assert!(!locks.acquire(LockId::ROOT, Pid(3), true)); // writer waits
/// ```
#[derive(Debug)]
pub struct LockTable {
    locks: Vec<LockState>,
    force_exclusive: bool,
    contended_acquires: u64,
    total_acquires: u64,
}

impl LockTable {
    /// Creates an empty table. `force_exclusive` selects the stock-IRIX
    /// mutual-exclusion behaviour for every lock.
    pub fn new(force_exclusive: bool) -> Self {
        LockTable {
            locks: Vec::new(),
            force_exclusive,
            contended_acquires: 0,
            total_acquires: 0,
        }
    }

    fn state(&mut self, lock: LockId) -> &mut LockState {
        let idx = lock.0 as usize;
        if self.locks.len() <= idx {
            self.locks.resize_with(idx + 1, LockState::default);
        }
        &mut self.locks[idx]
    }

    /// Attempts to acquire `lock` for `pid`. Returns `true` if granted
    /// immediately; otherwise the pid is queued and the caller must block
    /// it until a [`release`](Self::release) wakes it.
    pub fn acquire(&mut self, lock: LockId, pid: Pid, excl: bool) -> bool {
        let excl = excl || self.force_exclusive;
        // Saturate rather than wrap: a very long run must never panic in
        // debug builds or roll the contention ratio over in release.
        self.total_acquires = self.total_acquires.saturating_add(1);
        let st = self.state(lock);
        let grant = if excl {
            st.is_free() && st.waiters.is_empty()
        } else {
            st.exclusive_holder.is_none() && st.waiters.iter().all(|(_, w_excl)| !w_excl)
        };
        if grant {
            if excl {
                st.exclusive_holder = Some(pid);
            } else {
                st.shared_holders.push(pid);
            }
            true
        } else {
            st.waiters.push_back((pid, excl));
            self.contended_acquires = self.contended_acquires.saturating_add(1);
            false
        }
    }

    /// Releases one hold on `lock` by `pid` and returns the pids granted
    /// the lock as a result (already recorded as holders). The caller
    /// makes them runnable.
    ///
    /// # Panics
    ///
    /// Panics if `pid` does not hold the lock.
    pub fn release(&mut self, lock: LockId, pid: Pid) -> Vec<Pid> {
        let st = self.state(lock);
        if st.exclusive_holder == Some(pid) {
            st.exclusive_holder = None;
        } else {
            let pos = st
                .shared_holders
                .iter()
                .position(|&p| p == pid)
                .unwrap_or_else(|| panic!("{pid:?} releasing {lock:?} it does not hold"));
            st.shared_holders.swap_remove(pos);
        }
        Self::grant_waiters(st)
    }

    /// Grants the head waiter of a free lock; a leading run of shared
    /// waiters is granted together. Returns the granted pids.
    fn grant_waiters(st: &mut LockState) -> Vec<Pid> {
        let mut woken = Vec::new();
        if st.is_free() {
            if let Some((first, first_excl)) = st.waiters.pop_front() {
                if first_excl {
                    st.exclusive_holder = Some(first);
                    woken.push(first);
                } else {
                    st.shared_holders.push(first);
                    woken.push(first);
                    while matches!(st.waiters.front(), Some((_, false))) {
                        let (next, _) = st.waiters.pop_front().unwrap();
                        st.shared_holders.push(next);
                        woken.push(next);
                    }
                }
            }
        }
        woken
    }

    /// Crash recovery: releases every hold `pid` has on any lock and
    /// removes it from every wait queue. Returns the pids granted locks
    /// as a result; the caller makes them runnable.
    pub fn release_all(&mut self, pid: Pid) -> Vec<Pid> {
        let mut woken = Vec::new();
        for st in &mut self.locks {
            let mut held = st.exclusive_holder == Some(pid);
            if held {
                st.exclusive_holder = None;
            }
            let before = st.shared_holders.len();
            st.shared_holders.retain(|&p| p != pid);
            held |= st.shared_holders.len() != before;
            st.waiters.retain(|&(p, _)| p != pid);
            if held {
                woken.extend(Self::grant_waiters(st));
            }
        }
        woken
    }

    /// Calls `f` for every process still queued on `lock`, in queue
    /// order. Used by interference attribution to charge waiters for
    /// each hold segment as it ends.
    pub fn for_each_waiter(&self, lock: LockId, mut f: impl FnMut(Pid)) {
        if let Some(st) = self.locks.get(lock.0 as usize) {
            for &(pid, _) in &st.waiters {
                f(pid);
            }
        }
    }

    /// Fraction of acquisitions that had to wait.
    pub fn contention_ratio(&self) -> f64 {
        if self.total_acquires == 0 {
            0.0
        } else {
            self.contended_acquires as f64 / self.total_acquires as f64
        }
    }

    /// Total acquisitions attempted.
    pub fn total_acquires(&self) -> u64 {
        self.total_acquires
    }

    /// Acquisitions that found the lock busy.
    pub fn contended_acquires(&self) -> u64 {
        self.contended_acquires
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_share_in_rw_mode() {
        let mut t = LockTable::new(false);
        assert!(t.acquire(LockId::ROOT, Pid(1), false));
        assert!(t.acquire(LockId::ROOT, Pid(2), false));
        assert!(t.acquire(LockId::ROOT, Pid(3), false));
        assert_eq!(t.contended_acquires(), 0);
    }

    #[test]
    fn readers_serialize_in_mutex_mode() {
        let mut t = LockTable::new(true);
        assert!(t.acquire(LockId::ROOT, Pid(1), false));
        assert!(!t.acquire(LockId::ROOT, Pid(2), false));
        assert_eq!(t.contended_acquires(), 1);
        let woken = t.release(LockId::ROOT, Pid(1));
        assert_eq!(woken, vec![Pid(2)]);
    }

    #[test]
    fn writer_excludes_readers() {
        let mut t = LockTable::new(false);
        assert!(t.acquire(LockId::ROOT, Pid(1), true));
        assert!(!t.acquire(LockId::ROOT, Pid(2), false));
        assert!(!t.acquire(LockId::ROOT, Pid(3), false));
        let woken = t.release(LockId::ROOT, Pid(1));
        // Both queued readers granted together.
        assert_eq!(woken, vec![Pid(2), Pid(3)]);
    }

    #[test]
    fn waiting_writer_blocks_new_readers() {
        let mut t = LockTable::new(false);
        assert!(t.acquire(LockId::ROOT, Pid(1), false));
        assert!(!t.acquire(LockId::ROOT, Pid(2), true)); // writer queues
        assert!(
            !t.acquire(LockId::ROOT, Pid(3), false),
            "reader must queue behind a waiting writer (no writer starvation)"
        );
        let woken = t.release(LockId::ROOT, Pid(1));
        assert_eq!(woken, vec![Pid(2)], "writer granted first");
        let woken = t.release(LockId::ROOT, Pid(2));
        assert_eq!(woken, vec![Pid(3)]);
    }

    #[test]
    fn inode_lock_ids_are_distinct() {
        assert_ne!(LockId::inode(FileId(0)), LockId::ROOT);
        assert_ne!(LockId::inode(FileId(0)), LockId::inode(FileId(1)));
    }

    #[test]
    fn independent_locks_do_not_interfere() {
        let mut t = LockTable::new(true);
        assert!(t.acquire(LockId::inode(FileId(0)), Pid(1), true));
        assert!(t.acquire(LockId::inode(FileId(1)), Pid(2), true));
    }

    #[test]
    fn contention_ratio() {
        let mut t = LockTable::new(true);
        t.acquire(LockId::ROOT, Pid(1), false);
        t.acquire(LockId::ROOT, Pid(2), false);
        assert_eq!(t.total_acquires(), 2);
        assert!((t.contention_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn release_without_hold_panics() {
        let mut t = LockTable::new(false);
        t.release(LockId::ROOT, Pid(1));
    }

    #[test]
    fn release_all_frees_exclusive_and_shared_holds() {
        let mut t = LockTable::new(false);
        assert!(t.acquire(LockId::ROOT, Pid(1), false));
        assert!(t.acquire(LockId::ROOT, Pid(2), false));
        assert!(t.acquire(LockId::inode(FileId(0)), Pid(1), true));
        assert!(!t.acquire(LockId::inode(FileId(0)), Pid(3), true));
        assert!(!t.acquire(LockId::ROOT, Pid(4), true));
        // Pid 1 crashes: its inode lock passes to pid 3; ROOT is still
        // shared by pid 2 so the writer keeps waiting.
        let woken = t.release_all(Pid(1));
        assert_eq!(woken, vec![Pid(3)]);
        let woken = t.release(LockId::ROOT, Pid(2));
        assert_eq!(woken, vec![Pid(4)]);
    }

    #[test]
    fn release_all_purges_wait_queues() {
        let mut t = LockTable::new(false);
        assert!(t.acquire(LockId::ROOT, Pid(1), true));
        assert!(!t.acquire(LockId::ROOT, Pid(2), true));
        assert!(!t.acquire(LockId::ROOT, Pid(3), true));
        // Pid 2 crashes while queued: it must never be granted.
        assert_eq!(t.release_all(Pid(2)), Vec::<Pid>::new());
        assert_eq!(t.release(LockId::ROOT, Pid(1)), vec![Pid(3)]);
    }

    #[test]
    fn release_all_without_holds_is_noop() {
        let mut t = LockTable::new(false);
        assert!(t.acquire(LockId::ROOT, Pid(1), false));
        assert_eq!(t.release_all(Pid(9)), Vec::<Pid>::new());
        assert_eq!(t.release(LockId::ROOT, Pid(1)), Vec::<Pid>::new());
    }

    #[test]
    fn fifo_order_among_writers() {
        let mut t = LockTable::new(false);
        assert!(t.acquire(LockId::ROOT, Pid(1), true));
        assert!(!t.acquire(LockId::ROOT, Pid(2), true));
        assert!(!t.acquire(LockId::ROOT, Pid(3), true));
        assert_eq!(t.release(LockId::ROOT, Pid(1)), vec![Pid(2)]);
        assert_eq!(t.release(LockId::ROOT, Pid(2)), vec![Pid(3)]);
        assert_eq!(t.release(LockId::ROOT, Pid(3)), Vec::<Pid>::new());
    }

    #[test]
    fn contention_ratio_is_zero_not_nan_on_empty_table() {
        let t = LockTable::new(true);
        assert_eq!(t.total_acquires(), 0);
        assert_eq!(t.contended_acquires(), 0);
        let r = t.contention_ratio();
        assert!(!r.is_nan(), "0/0 must not surface as NaN");
        assert_eq!(r, 0.0);
    }

    #[test]
    fn acquire_counters_saturate_instead_of_wrapping() {
        let mut t = LockTable::new(true);
        t.total_acquires = u64::MAX;
        t.contended_acquires = u64::MAX;
        assert!(t.acquire(LockId::ROOT, Pid(1), false));
        assert!(!t.acquire(LockId::ROOT, Pid(2), false));
        assert_eq!(t.total_acquires(), u64::MAX);
        assert_eq!(t.contended_acquires(), u64::MAX);
        let r = t.contention_ratio();
        assert!(r.is_finite());
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fifo_handoff_preserves_mixed_arrival_order() {
        // Arrival order writer/reader/writer/reader must be honoured
        // exactly: no reader batch may overtake an earlier writer.
        let mut t = LockTable::new(false);
        assert!(t.acquire(LockId::ROOT, Pid(1), true));
        assert!(!t.acquire(LockId::ROOT, Pid(2), true));
        assert!(!t.acquire(LockId::ROOT, Pid(3), false));
        assert!(!t.acquire(LockId::ROOT, Pid(4), true));
        assert!(!t.acquire(LockId::ROOT, Pid(5), false));
        assert_eq!(t.release(LockId::ROOT, Pid(1)), vec![Pid(2)]);
        assert_eq!(t.release(LockId::ROOT, Pid(2)), vec![Pid(3)]);
        assert_eq!(t.release(LockId::ROOT, Pid(3)), vec![Pid(4)]);
        assert_eq!(t.release(LockId::ROOT, Pid(4)), vec![Pid(5)]);
    }

    #[test]
    fn adjacent_readers_wake_as_one_batch() {
        // writer, then readers 2,3, writer 4, reader 5: the leading run
        // of shared waiters is granted together, but the batch stops at
        // the queued writer even though another reader waits behind it.
        let mut t = LockTable::new(false);
        assert!(t.acquire(LockId::ROOT, Pid(1), true));
        assert!(!t.acquire(LockId::ROOT, Pid(2), false));
        assert!(!t.acquire(LockId::ROOT, Pid(3), false));
        assert!(!t.acquire(LockId::ROOT, Pid(4), true));
        assert!(!t.acquire(LockId::ROOT, Pid(5), false));
        assert_eq!(t.release(LockId::ROOT, Pid(1)), vec![Pid(2), Pid(3)]);
        // Both readers must release before the writer runs.
        assert_eq!(t.release(LockId::ROOT, Pid(2)), Vec::<Pid>::new());
        assert_eq!(t.release(LockId::ROOT, Pid(3)), vec![Pid(4)]);
        assert_eq!(t.release(LockId::ROOT, Pid(4)), vec![Pid(5)]);
    }

    #[test]
    fn release_all_dead_reader_waiting_exclusive_elsewhere() {
        // Pid 1 holds ROOT shared *and* waits exclusive on an inode lock
        // when it dies: the inode queue must forget it (pid 3 is next),
        // and its ROOT share must pass to the queued writer.
        let mut t = LockTable::new(false);
        assert!(t.acquire(LockId::ROOT, Pid(1), false));
        assert!(t.acquire(LockId::inode(FileId(0)), Pid(2), true));
        assert!(!t.acquire(LockId::inode(FileId(0)), Pid(1), true));
        assert!(!t.acquire(LockId::inode(FileId(0)), Pid(3), true));
        assert!(!t.acquire(LockId::ROOT, Pid(4), true));
        assert_eq!(t.release_all(Pid(1)), vec![Pid(4)]);
        // The dead pid never surfaces from the inode queue.
        assert_eq!(t.release(LockId::inode(FileId(0)), Pid(2)), vec![Pid(3)]);
    }

    #[test]
    fn release_all_is_idempotent_for_the_same_pid() {
        let mut t = LockTable::new(false);
        assert!(t.acquire(LockId::ROOT, Pid(1), true));
        assert!(!t.acquire(LockId::ROOT, Pid(2), true));
        assert_eq!(t.release_all(Pid(1)), vec![Pid(2)]);
        assert_eq!(t.release_all(Pid(1)), Vec::<Pid>::new());
    }
}
