//! Workload program scripts.
//!
//! A [`Program`] is the resource signature of an application: a sequence
//! of compute bursts, file reads/writes, memory allocation and touching,
//! forks, and barriers. The [`workloads`](../../workloads) crate builds
//! programs matching the paper's applications (pmake, Ocean, Flashlite,
//! VCS, file copy); the kernel interprets them.

use std::sync::Arc;

use event_sim::SimDuration;

use crate::fs::FileId;

/// Identifies a barrier shared by the processes of a parallel program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BarrierId(pub u32);

/// One step of a program script.
#[derive(Clone, Debug)]
pub enum ProgramOp {
    /// Burn CPU for `duration`, re-touching the first `working_set` pages
    /// of the process's memory region every touch interval. Pages evicted
    /// by memory pressure fault back in from swap.
    Compute {
        /// Total CPU time of the burst.
        duration: SimDuration,
        /// Pages that must stay resident for the burst.
        working_set: u32,
    },
    /// Grow the process's anonymous region to at least `pages` pages
    /// (pages become resident lazily on touch).
    Alloc {
        /// New minimum region size in pages.
        pages: u32,
    },
    /// Read `bytes` from `file` starting at `offset` through the buffer
    /// cache (with read-ahead on misses).
    Read {
        /// File to read.
        file: FileId,
        /// Byte offset of the first byte.
        offset: u64,
        /// Bytes to read.
        bytes: u64,
    },
    /// Write `bytes` to `file` at `offset` through the buffer cache
    /// (write-behind; may block on the dirty-buffer watermark).
    Write {
        /// File to write.
        file: FileId,
        /// Byte offset of the first byte.
        offset: u64,
        /// Bytes to write.
        bytes: u64,
    },
    /// Synchronous single-sector metadata update of `file` (pmake's
    /// "many repeated writes of meta-data to a single sector", §4.5).
    MetaWrite {
        /// File whose metadata is updated.
        file: FileId,
    },
    /// Spawn a child process running `program` in the same SPU.
    Fork {
        /// The child's script.
        program: Arc<Program>,
    },
    /// Block until all forked children have exited.
    WaitChildren,
    /// Synchronize with the other `participants - 1` processes at this
    /// barrier (parallel applications like Ocean).
    Barrier {
        /// Barrier identity (must be unique per barrier per workload).
        id: BarrierId,
        /// Number of processes that must arrive before any proceeds.
        participants: u32,
    },
}

/// A complete program script with a display name.
///
/// # Examples
///
/// ```
/// use event_sim::SimDuration;
/// use smp_kernel::Program;
///
/// let p = Program::builder("hello")
///     .compute(SimDuration::from_millis(100), 16)
///     .build();
/// assert_eq!(p.name(), "hello");
/// assert_eq!(p.ops().len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Program {
    name: String,
    ops: Vec<ProgramOp>,
}

impl Program {
    /// Starts building a program.
    pub fn builder(name: &str) -> ProgramBuilder {
        ProgramBuilder {
            name: name.to_string(),
            ops: Vec::new(),
        }
    }

    /// The program's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The script steps.
    pub fn ops(&self) -> &[ProgramOp] {
        &self.ops
    }
}

impl event_sim::Fingerprint for ProgramOp {
    fn fingerprint(&self, h: &mut event_sim::Fnv64) {
        match self {
            ProgramOp::Compute {
                duration,
                working_set,
            } => {
                h.write_u64(1);
                duration.fingerprint(h);
                h.write_u32(*working_set);
            }
            ProgramOp::Alloc { pages } => {
                h.write_u64(2);
                h.write_u32(*pages);
            }
            ProgramOp::Read {
                file,
                offset,
                bytes,
            } => {
                h.write_u64(3);
                h.write_u32(file.0);
                h.write_u64(*offset);
                h.write_u64(*bytes);
            }
            ProgramOp::Write {
                file,
                offset,
                bytes,
            } => {
                h.write_u64(4);
                h.write_u32(file.0);
                h.write_u64(*offset);
                h.write_u64(*bytes);
            }
            ProgramOp::MetaWrite { file } => {
                h.write_u64(5);
                h.write_u32(file.0);
            }
            ProgramOp::Fork { program } => {
                h.write_u64(6);
                program.fingerprint(h);
            }
            ProgramOp::WaitChildren => h.write_u64(7),
            ProgramOp::Barrier { id, participants } => {
                h.write_u64(8);
                h.write_u32(id.0);
                h.write_u32(*participants);
            }
        }
    }
}

impl event_sim::Fingerprint for Program {
    fn fingerprint(&self, h: &mut event_sim::Fnv64) {
        h.write_str(&self.name);
        h.write_usize(self.ops.len());
        for op in &self.ops {
            op.fingerprint(h);
        }
    }
}

/// Builder for [`Program`] scripts.
#[derive(Clone, Debug)]
pub struct ProgramBuilder {
    name: String,
    ops: Vec<ProgramOp>,
}

impl ProgramBuilder {
    /// Appends a compute burst.
    pub fn compute(mut self, duration: SimDuration, working_set: u32) -> Self {
        self.ops.push(ProgramOp::Compute {
            duration,
            working_set,
        });
        self
    }

    /// Appends a region growth.
    pub fn alloc(mut self, pages: u32) -> Self {
        self.ops.push(ProgramOp::Alloc { pages });
        self
    }

    /// Appends a file read.
    pub fn read(mut self, file: FileId, offset: u64, bytes: u64) -> Self {
        self.ops.push(ProgramOp::Read {
            file,
            offset,
            bytes,
        });
        self
    }

    /// Appends a file write.
    pub fn write(mut self, file: FileId, offset: u64, bytes: u64) -> Self {
        self.ops.push(ProgramOp::Write {
            file,
            offset,
            bytes,
        });
        self
    }

    /// Appends a synchronous metadata write.
    pub fn meta_write(mut self, file: FileId) -> Self {
        self.ops.push(ProgramOp::MetaWrite { file });
        self
    }

    /// Appends a fork of `program`.
    pub fn fork(mut self, program: Arc<Program>) -> Self {
        self.ops.push(ProgramOp::Fork { program });
        self
    }

    /// Appends a wait for all children.
    pub fn wait_children(mut self) -> Self {
        self.ops.push(ProgramOp::WaitChildren);
        self
    }

    /// Appends a barrier arrival.
    pub fn barrier(mut self, id: BarrierId, participants: u32) -> Self {
        self.ops.push(ProgramOp::Barrier { id, participants });
        self
    }

    /// Appends an arbitrary op.
    pub fn op(mut self, op: ProgramOp) -> Self {
        self.ops.push(op);
        self
    }

    /// Finishes the program.
    pub fn build(self) -> Arc<Program> {
        Arc::new(Program {
            name: self.name,
            ops: self.ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_ops_in_order() {
        let inner = Program::builder("child")
            .compute(SimDuration::from_millis(5), 0)
            .build();
        let p = Program::builder("parent")
            .alloc(10)
            .compute(SimDuration::from_millis(1), 4)
            .read(FileId(0), 0, 4096)
            .write(FileId(1), 0, 8192)
            .meta_write(FileId(1))
            .fork(inner.clone())
            .fork(inner)
            .wait_children()
            .barrier(BarrierId(3), 4)
            .build();
        assert_eq!(p.name(), "parent");
        assert_eq!(p.ops().len(), 9);
        assert!(matches!(p.ops()[0], ProgramOp::Alloc { pages: 10 }));
        assert!(matches!(
            p.ops()[8],
            ProgramOp::Barrier {
                participants: 4,
                ..
            }
        ));
    }

    #[test]
    fn programs_are_shareable() {
        let p = Program::builder("x")
            .compute(SimDuration::from_millis(1), 0)
            .build();
        let q = Arc::clone(&p);
        assert_eq!(p.name(), q.name());
    }
}
