//! A simulated IRIX-style SMP kernel with SPU performance isolation.
//!
//! This crate is the substrate of the reproduction: a deterministic
//! discrete-event model of the machine and kernel the paper modified —
//! processes with UNIX decay-usage priority scheduling (30 ms slices,
//! 10 ms ticks), a paged physical memory with per-SPU accounting, a file
//! buffer cache with read-ahead and write-behind, HP 97560 disks, and
//! kernel locks — plus the paper's three resource-management policies
//! (`SMP` / `Quota` / `PIso`) wired through every subsystem:
//!
//! * **CPU** (§3.1): hybrid space/time partition, idle-CPU loans, 10 ms
//!   revocation — [`sched`].
//! * **Memory** (§3.2): entitled/allowed/used page accounting, Reserve
//!   Threshold, shared-page re-marking — [`vm`].
//! * **Disk bandwidth** (§3.3): decayed sector counts and the
//!   BW-difference fairness criterion — wired to
//!   [`hp_disk`]'s schedulers.
//! * **Kernel locks** (§3.4): the inode-lock mutex → multi-reader fix —
//!   [`locks`].
//!
//! Entry point: build a [`MachineConfig`], boot a [`Kernel`], attach
//! [`Program`]s to SPUs, call [`Kernel::run`], read the [`RunMetrics`].
//!
//! # Examples
//!
//! ```
//! use event_sim::{SimDuration, SimTime};
//! use smp_kernel::{Kernel, MachineConfig, Program};
//! use spu_core::{Scheme, SpuId, SpuSet};
//!
//! // Two SPUs on a 2-CPU machine under performance isolation.
//! let cfg = MachineConfig::builder().topology(2, 32, 1).scheme(Scheme::PIso).build().unwrap();
//! let mut kernel = Kernel::new(cfg, SpuSet::equal_users(2));
//! let spin = Program::builder("spin")
//!     .compute(SimDuration::from_millis(100), 0)
//!     .build();
//! kernel.spawn_at(SpuId::user(0), spin.clone(), Some("a"), SimTime::ZERO);
//! kernel.spawn_at(SpuId::user(1), spin, Some("b"), SimTime::ZERO);
//! let m = kernel.run(SimTime::from_secs(5));
//! assert!(m.completed);
//! ```

mod admission;
pub mod bufcache;
pub mod config;
mod cpu;
pub mod error;
mod event;
pub mod export;
mod fastmap;
pub mod fs;
mod io;
pub mod kernel;
pub mod locks;
mod mem;
pub mod metrics;
pub mod obsv;
mod policy;
pub mod process;
pub mod program;
pub mod sched;
pub mod trace;
pub mod vm;

pub use bufcache::{BufferCache, CacheEntry, CacheStats};
pub use config::{
    ConfigError, DiskSetup, MachineConfig, MachineConfigBuilder, Tuning, PAGE_SIZE,
    SECTORS_PER_PAGE,
};
pub use error::KernelError;
pub use export::{
    chrome_trace_json, counters_jsonl, histogram_json, interference_jsonl,
    interference_matrix_json, metrics_jsonl, requests_jsonl, series_jsonl, slo_jsonl,
};
pub use fs::{FileId, FileMeta, FileSystem};
pub use kernel::Kernel;
pub use locks::{LockId, LockTable};
pub use metrics::{JobRecord, RunMetrics};
pub use obsv::interference::{
    Channel, InterferenceMatrix, InterferenceReport, LockClass, SloReport, SloSample, SpuSlo,
};
pub use obsv::{
    CounterId, CounterRegistry, LatencyStats, ObsvReport, RequestReport, ResourceKind,
    ResourceSample, SampleSeries, SpuRequests,
};
pub use process::{BlockReason, JobId, MicroOp, PageState, Pid, ProcState, Process};
pub use program::{BarrierId, Program, ProgramBuilder, ProgramOp};
pub use sched::{CpuState, ProcTable, Scheduler};
pub use trace::{Trace, TraceEvent};
pub use vm::{Acquired, Evicted, Frame, FrameId, FrameOwner, MemoryManager, VmSpuStats};
