//! Processes and the script interpreter's micro-operations.
//!
//! The kernel expands each [`ProgramOp`] into a
//! queue of [`MicroOp`]s — the granularity at which the simulated kernel
//! makes decisions (one buffer-cache block, one lock acquire, one CPU
//! burst). Most blocking micro-ops are *idempotent*: a woken process
//! re-executes the micro-op at the front of its queue, observes the new
//! state (page now resident, cache block now valid, lock now free) and
//! proceeds.

use std::collections::VecDeque;
use std::sync::Arc;

use event_sim::{SimDuration, SimTime};
use spu_core::SpuId;

use crate::config::{Tuning, PAGE_SIZE};
use crate::fs::FileId;
use crate::locks::LockId;
use crate::program::{BarrierId, Program, ProgramOp};

/// Process identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

/// Identifies a top-level job for response-time reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

/// Why a process is blocked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting for its own disk I/O (swap, eviction writes, metadata).
    Io,
    /// Waiting for a buffer-cache fill issued by itself or another
    /// process.
    CacheFill,
    /// Waiting for a kernel lock.
    Lock(LockId),
    /// Refused a page; waiting for memory to free up.
    Memory,
    /// Waiting for children to exit.
    Children,
    /// Waiting at a barrier.
    Barrier(BarrierId),
    /// Throttled on the dirty-buffer high watermark.
    DirtyThrottle,
}

/// Scheduler-visible process state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcState {
    /// Runnable, waiting for a CPU.
    Ready,
    /// Executing on the given CPU.
    Running(usize),
    /// Blocked for the given reason.
    Blocked(BlockReason),
    /// Exited.
    Done,
}

/// State of one page of a process's anonymous region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageState {
    /// Never touched; first touch zero-fills.
    Unmapped,
    /// Resident in the given physical frame.
    Resident(crate::vm::FrameId),
    /// Paged out to the given swap slot (absolute sector on the swap
    /// disk).
    Swapped(u64),
}

/// One interpreter step.
#[derive(Clone, Debug)]
pub enum MicroOp {
    /// Consume CPU time.
    Cpu(SimDuration),
    /// Sweep the first `pages` pages of the region in order, faulting in
    /// any that are not resident when reached. `cursor` records progress
    /// so a blocked sweep resumes where it left off — crucially, a sweep
    /// does **not** require the whole set to be resident at once, so a
    /// working set larger than the SPU's allowed memory thrashes (with
    /// forward progress) instead of livelocking.
    Touch {
        /// Pages to sweep.
        pages: u32,
        /// Next page to visit.
        cursor: u32,
    },
    /// Grow the region to at least this many pages.
    Alloc(u32),
    /// Wait until the process's private pending I/O count reaches zero
    /// (idempotent).
    AwaitIo,
    /// Acquire a kernel lock (idempotent: retried until granted).
    LockAcquire {
        /// Which lock.
        lock: LockId,
        /// Exclusive (writer) or shared (reader) intent.
        excl: bool,
    },
    /// Release a kernel lock.
    LockRelease {
        /// Which lock.
        lock: LockId,
    },
    /// Read one file block through the buffer cache (idempotent).
    BlockRead {
        /// File.
        file: FileId,
        /// Block index within the file.
        block: u64,
    },
    /// Write one file block through the buffer cache (idempotent).
    BlockWrite {
        /// File.
        file: FileId,
        /// Block index within the file.
        block: u64,
    },
    /// Issue a synchronous single-sector metadata write.
    MetaWrite {
        /// File whose metadata sector is written.
        file: FileId,
    },
    /// Spawn a child running the program.
    Fork(Arc<Program>),
    /// Wait for all children to exit (idempotent).
    WaitChildren,
    /// Arrive at a barrier (pops on arrival; the barrier wakes sleepers).
    Barrier {
        /// Barrier identity.
        id: BarrierId,
        /// Total arrivals required.
        participants: u32,
    },
}

/// A simulated process.
#[derive(Debug)]
pub struct Process {
    /// Its id.
    pub pid: Pid,
    /// The SPU whose resources it uses.
    pub spu: SpuId,
    /// The job it belongs to, if tracked.
    pub job: Option<JobId>,
    /// Display name (program name).
    pub name: String,
    program: Arc<Program>,
    pc: usize,
    micro: VecDeque<MicroOp>,
    /// Scheduler state.
    pub state: ProcState,
    /// Decayed CPU usage driving priority (lower = higher priority).
    pub p_cpu: f64,
    /// FIFO tie-break stamp maintained by the scheduler.
    pub ready_seq: u64,
    /// Per-CPU run queue currently holding this process, or
    /// [`NO_QUEUE`](crate::sched::NO_QUEUE) when not queued. Maintained
    /// by the scheduler so dequeue is O(1) instead of a queue scan.
    pub(crate) run_q: u32,
    /// Slot inside that queue (kept current under swap-removal).
    pub(crate) run_q_slot: u32,
    /// Handle to this process's page table in the kernel's [`PageArena`].
    pub pages: PageSlab,
    /// Private outstanding disk operations ([`MicroOp::AwaitIo`]).
    pub pending_io: u32,
    /// Disk operations that failed up to this process after the
    /// kernel's retries were exhausted.
    pub io_errors: u32,
    /// Parent process, if forked.
    pub parent: Option<Pid>,
    /// Children that have not exited yet.
    pub live_children: u32,
    /// Spawn time.
    pub spawned: SimTime,
    /// Exit time.
    pub finished: Option<SimTime>,
    /// Total CPU time consumed.
    pub cpu_time: SimDuration,
}

impl Process {
    /// Creates a process about to start `program`.
    pub fn new(
        pid: Pid,
        spu: SpuId,
        job: Option<JobId>,
        program: Arc<Program>,
        parent: Option<Pid>,
        spawned: SimTime,
    ) -> Self {
        Process {
            pid,
            spu,
            job,
            name: program.name().to_string(),
            program,
            pc: 0,
            micro: VecDeque::new(),
            state: ProcState::Ready,
            p_cpu: 0.0,
            ready_seq: 0,
            run_q: crate::sched::NO_QUEUE,
            run_q_slot: 0,
            pages: PageSlab::NONE,
            pending_io: 0,
            io_errors: 0,
            parent,
            live_children: 0,
            spawned,
            finished: None,
            cpu_time: SimDuration::ZERO,
        }
    }

    /// The current front micro-op, expanding program ops as needed.
    /// `None` means the program has finished.
    pub fn current_micro(&mut self, tuning: &Tuning) -> Option<&MicroOp> {
        while self.micro.is_empty() {
            let op = self.program.ops().get(self.pc)?.clone();
            self.pc += 1;
            expand_op(&op, tuning, &mut self.micro);
        }
        self.micro.front()
    }

    /// The front micro-op without expansion (for assertions and
    /// preemption).
    pub fn micro_front(&self) -> Option<&MicroOp> {
        self.micro.front()
    }

    /// The program this process runs (shared, immutable).
    pub fn program_arc(&self) -> Arc<Program> {
        Arc::clone(&self.program)
    }

    /// Takes the micro-op queue out of the process (at exit), leaving an
    /// empty one, so its allocation can be pooled and reused.
    pub(crate) fn take_micro(&mut self) -> VecDeque<MicroOp> {
        std::mem::take(&mut self.micro)
    }

    /// Installs a recycled (empty) micro-op queue, replacing the default
    /// unallocated one. Only valid before the process first runs.
    pub(crate) fn install_recycled_micro(&mut self, micro: VecDeque<MicroOp>) {
        debug_assert!(micro.is_empty() && self.micro.is_empty());
        self.micro = micro;
    }

    /// Pops the front micro-op (it completed).
    pub fn pop_micro(&mut self) {
        self.micro.pop_front();
    }

    /// Pushes a micro-op to the front (to run next).
    pub fn push_front_micro(&mut self, op: MicroOp) {
        self.micro.push_front(op);
    }

    /// Records sweep progress in the front `Touch` micro-op.
    ///
    /// # Panics
    ///
    /// Panics if the front micro-op is not `Touch`.
    pub fn set_touch_cursor(&mut self, cursor: u32) {
        match self.micro.front_mut() {
            Some(MicroOp::Touch { cursor: c, .. }) => *c = cursor,
            other => panic!("set_touch_cursor on {other:?}"),
        }
    }

    /// Reduces the front `Cpu` micro-op by `consumed`, popping it when it
    /// reaches zero. Returns `true` if the burst completed.
    ///
    /// # Panics
    ///
    /// Panics if the front micro-op is not `Cpu`.
    pub fn consume_cpu(&mut self, consumed: SimDuration) -> bool {
        match self.micro.front_mut() {
            Some(MicroOp::Cpu(rem)) => {
                *rem = rem.saturating_sub(consumed);
                if rem.is_zero() {
                    self.micro.pop_front();
                    true
                } else {
                    false
                }
            }
            other => panic!("consume_cpu on non-Cpu micro-op: {other:?}"),
        }
    }

    /// Whether the process is runnable.
    pub fn is_ready(&self) -> bool {
        self.state == ProcState::Ready
    }

}

/// Handle to one process's page table inside the kernel's [`PageArena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageSlab(u32);

impl PageSlab {
    /// Sentinel for processes that have not been given a table yet
    /// (pre-insert construction, scheduler test fixtures). Any table
    /// access through it panics.
    pub const NONE: PageSlab = PageSlab(u32::MAX);
}

/// Kernel-owned arena of per-process page tables.
///
/// Page state lives in dense per-process slabs indexed by a [`PageSlab`]
/// handle rather than inside each [`Process`]: the fault path reads the
/// table and the frame table side by side (disjoint kernel fields, so the
/// borrows split), and exited processes return their slab — storage
/// included — for the next fork to reuse, replacing the old page-table
/// pool.
#[derive(Debug, Default)]
pub struct PageArena {
    slabs: Vec<Vec<PageState>>,
    free: Vec<u32>,
}

impl PageArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates an empty page table, reusing a retired slab's storage
    /// when one is available.
    pub fn alloc(&mut self) -> PageSlab {
        if let Some(i) = self.free.pop() {
            PageSlab(i)
        } else {
            self.slabs.push(Vec::new());
            PageSlab(self.slabs.len() as u32 - 1)
        }
    }

    /// Retires a table at process exit: entries are dropped, capacity is
    /// kept for the next [`alloc`](Self::alloc).
    pub fn release(&mut self, slab: PageSlab) {
        self.slabs[slab.0 as usize].clear();
        self.free.push(slab.0);
    }

    /// Grows a table to at least `pages` entries.
    pub fn grow(&mut self, slab: PageSlab, pages: u32) {
        let t = &mut self.slabs[slab.0 as usize];
        if t.len() < pages as usize {
            t.resize(pages as usize, PageState::Unmapped);
        }
    }

    /// A table's entries.
    #[inline]
    pub fn table(&self, slab: PageSlab) -> &[PageState] {
        &self.slabs[slab.0 as usize]
    }

    /// A table's entries, mutably.
    #[inline]
    pub fn table_mut(&mut self, slab: PageSlab) -> &mut [PageState] {
        &mut self.slabs[slab.0 as usize]
    }
}

/// Expands one program op into micro-ops, appended to `out`.
pub fn expand_op(op: &ProgramOp, tuning: &Tuning, out: &mut VecDeque<MicroOp>) {
    match op {
        ProgramOp::Compute {
            duration,
            working_set,
        } => {
            if *working_set == 0 {
                out.push_back(MicroOp::Cpu(*duration));
            } else {
                let mut remaining = *duration;
                while !remaining.is_zero() {
                    let chunk = remaining.min(tuning.touch_interval);
                    out.push_back(MicroOp::Touch {
                        pages: *working_set,
                        cursor: 0,
                    });
                    out.push_back(MicroOp::Cpu(chunk));
                    remaining = remaining.saturating_sub(chunk);
                }
            }
        }
        ProgramOp::Alloc { pages } => out.push_back(MicroOp::Alloc(*pages)),
        ProgramOp::Read {
            file,
            offset,
            bytes,
        } => {
            lookup_micro_ops(*file, false, tuning, out);
            for block in block_range(*offset, *bytes) {
                out.push_back(MicroOp::BlockRead { file: *file, block });
            }
        }
        ProgramOp::Write {
            file,
            offset,
            bytes,
        } => {
            lookup_micro_ops(*file, false, tuning, out);
            for block in block_range(*offset, *bytes) {
                out.push_back(MicroOp::BlockWrite { file: *file, block });
            }
        }
        ProgramOp::MetaWrite { file } => {
            // Metadata updates lock the file's inode exclusively for the
            // duration of the synchronous write.
            out.push_back(MicroOp::LockAcquire {
                lock: LockId::inode(*file),
                excl: true,
            });
            out.push_back(MicroOp::Cpu(tuning.lookup_cost));
            out.push_back(MicroOp::MetaWrite { file: *file });
            out.push_back(MicroOp::AwaitIo);
            out.push_back(MicroOp::LockRelease {
                lock: LockId::inode(*file),
            });
        }
        ProgramOp::Fork { program } => {
            out.push_back(MicroOp::Cpu(tuning.fork_cost));
            out.push_back(MicroOp::Fork(Arc::clone(program)));
        }
        ProgramOp::WaitChildren => out.push_back(MicroOp::WaitChildren),
        ProgramOp::Barrier { id, participants } => out.push_back(MicroOp::Barrier {
            id: *id,
            participants: *participants,
        }),
    }
}

/// Pathname lookup: hold the root inode lock (shared under the §3.4 fix,
/// exclusive under the stock mutex) for the lookup cost.
fn lookup_micro_ops(_file: FileId, excl: bool, tuning: &Tuning, out: &mut VecDeque<MicroOp>) {
    out.push_back(MicroOp::LockAcquire {
        lock: LockId::ROOT,
        excl,
    });
    out.push_back(MicroOp::Cpu(tuning.lookup_cost));
    out.push_back(MicroOp::LockRelease { lock: LockId::ROOT });
}

/// The file blocks covering `[offset, offset + bytes)`.
pub fn block_range(offset: u64, bytes: u64) -> std::ops::Range<u64> {
    if bytes == 0 {
        return 0..0;
    }
    let first = offset / PAGE_SIZE;
    let last = (offset + bytes - 1) / PAGE_SIZE;
    first..last + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(program: Arc<Program>) -> Process {
        Process::new(Pid(1), SpuId::user(0), None, program, None, SimTime::ZERO)
    }

    #[test]
    fn block_range_math() {
        assert_eq!(block_range(0, 4096), 0..1);
        assert_eq!(block_range(0, 4097), 0..2);
        assert_eq!(block_range(4096, 4096), 1..2);
        assert_eq!(block_range(100, 8000), 0..2);
        assert_eq!(block_range(0, 0), 0..0);
    }

    #[test]
    fn compute_with_working_set_interleaves_touch() {
        let t = Tuning::default();
        let p = Program::builder("c")
            .compute(SimDuration::from_millis(100), 32)
            .build();
        let mut proc = mk(p);
        let first = proc.current_micro(&t).unwrap();
        assert!(
            matches!(
                first,
                MicroOp::Touch {
                    pages: 32,
                    cursor: 0
                }
            ),
            "{first:?}"
        );
        proc.pop_micro();
        // 100ms at 50ms touch interval = 2 chunks of [Touch, Cpu].
        let mut cpu_total = SimDuration::ZERO;
        let mut touches = 1;
        while let Some(m) = proc.current_micro(&t) {
            match m {
                MicroOp::Cpu(d) => cpu_total += *d,
                MicroOp::Touch { .. } => touches += 1,
                other => panic!("unexpected {other:?}"),
            }
            proc.pop_micro();
        }
        assert_eq!(cpu_total, SimDuration::from_millis(100));
        assert_eq!(touches, 2);
    }

    #[test]
    fn compute_without_working_set_is_one_burst() {
        let t = Tuning::default();
        let p = Program::builder("c")
            .compute(SimDuration::from_millis(500), 0)
            .build();
        let mut proc = mk(p);
        assert!(matches!(
            proc.current_micro(&t).unwrap(),
            MicroOp::Cpu(d) if *d == SimDuration::from_millis(500)
        ));
        proc.pop_micro();
        assert!(proc.current_micro(&t).is_none());
    }

    #[test]
    fn read_expands_to_lookup_then_blocks() {
        let t = Tuning::default();
        let p = Program::builder("r").read(FileId(3), 0, 12_288).build();
        let mut proc = mk(p);
        let mut kinds = Vec::new();
        while let Some(m) = proc.current_micro(&t) {
            kinds.push(format!("{m:?}"));
            proc.pop_micro();
        }
        assert!(kinds[0].starts_with("LockAcquire"), "{kinds:?}");
        assert!(kinds[1].starts_with("Cpu"), "{kinds:?}");
        assert!(kinds[2].starts_with("LockRelease"), "{kinds:?}");
        assert_eq!(
            kinds.iter().filter(|k| k.starts_with("BlockRead")).count(),
            3
        );
    }

    #[test]
    fn meta_write_holds_inode_lock_across_io() {
        let t = Tuning::default();
        let p = Program::builder("m").meta_write(FileId(0)).build();
        let mut proc = mk(p);
        let mut kinds = Vec::new();
        while let Some(m) = proc.current_micro(&t) {
            kinds.push(format!("{m:?}"));
            proc.pop_micro();
        }
        assert!(kinds[0].starts_with("LockAcquire"));
        assert!(kinds[2].starts_with("MetaWrite"));
        assert!(kinds[3].starts_with("AwaitIo"));
        assert!(kinds[4].starts_with("LockRelease"));
    }

    #[test]
    fn consume_cpu_partial_and_complete() {
        let t = Tuning::default();
        let p = Program::builder("c")
            .compute(SimDuration::from_millis(30), 0)
            .build();
        let mut proc = mk(p);
        proc.current_micro(&t);
        assert!(!proc.consume_cpu(SimDuration::from_millis(10)));
        assert!(!proc.consume_cpu(SimDuration::from_millis(10)));
        assert!(proc.consume_cpu(SimDuration::from_millis(10)));
        assert!(proc.current_micro(&t).is_none());
    }

    #[test]
    fn alloc_expands_to_alloc_micro_op() {
        let t = Tuning::default();
        let p = Program::builder("a").alloc(4).build();
        let mut proc = mk(p);
        assert!(matches!(proc.current_micro(&t).unwrap(), MicroOp::Alloc(4)));
    }

    #[test]
    fn arena_grows_tables_and_recycles_slabs() {
        let mut arena = PageArena::new();
        let slab = arena.alloc();
        arena.grow(slab, 4);
        assert_eq!(arena.table(slab).len(), 4);
        assert!(arena
            .table(slab)
            .iter()
            .all(|s| matches!(s, PageState::Unmapped)));
        arena.table_mut(slab)[1] = PageState::Resident(crate::vm::FrameId(9));
        // Growing never shrinks.
        arena.grow(slab, 2);
        assert_eq!(arena.table(slab).len(), 4);
        // Releasing empties the table and recycles the slab id.
        arena.release(slab);
        let again = arena.alloc();
        assert_eq!(again, slab);
        assert!(arena.table(again).is_empty());
    }

    #[test]
    fn fork_costs_cpu_then_forks() {
        let t = Tuning::default();
        let child = Program::builder("child").build();
        let p = Program::builder("f").fork(child).wait_children().build();
        let mut proc = mk(p);
        assert!(matches!(proc.current_micro(&t).unwrap(), MicroOp::Cpu(_)));
        proc.pop_micro();
        assert!(matches!(proc.current_micro(&t).unwrap(), MicroOp::Fork(_)));
        proc.pop_micro();
        assert!(matches!(
            proc.current_micro(&t).unwrap(),
            MicroOp::WaitChildren
        ));
    }
}
