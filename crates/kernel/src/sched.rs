//! The hybrid CPU scheduler (§3.1).
//!
//! "To provide isolation the normal priority-based scheduling behavior is
//! modified by having CPUs select processes only from their home SPUs
//! when scheduling ... Sharing is implemented by relaxing the SPU ID
//! restriction when a processor becomes idle. ... Currently, the process
//! with the highest priority is chosen."
//!
//! Priorities are classic UNIX decay-usage: a process's `p_cpu` rises
//! while it runs and decays over time; lower values win. Between
//! processes of the same SPU the standard discipline applies unchanged.

use event_sim::{SimDuration, SimTime};
use spu_core::{CpuAssignment, CpuPartition, Scheme, SharedCpuRotor, SpuId, SpuSet};

use crate::process::{Pid, ProcState, Process};

/// Per-tick multiplicative decay of `p_cpu` (half-life ≈ 1 s at a 10 ms
/// tick).
pub const P_CPU_DECAY: f64 = 0.9931;

/// Width of one priority band in `p_cpu` milliseconds. Like classic
/// UNIX/IRIX schedulers, priorities are coarse bands with round-robin
/// (FIFO) inside a band: two compute-bound processes whose decayed usage
/// differs by less than a band are *equal* and rotate, rather than the
/// infinitesimally-less-used one always winning.
pub const PRIORITY_BAND_MS: f64 = 120.0;

/// The discrete priority of a process (lower wins).
fn priority_band(p: &Process) -> i64 {
    (p.p_cpu / PRIORITY_BAND_MS) as i64
}

/// A process table indexed by [`Pid`]. Processes are never removed;
/// exited processes stay in the `Done` state.
#[derive(Debug, Default)]
pub struct ProcTable {
    procs: Vec<Process>,
}

impl ProcTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ProcTable::default()
    }

    /// The pid the next inserted process will get.
    pub fn next_pid(&self) -> Pid {
        Pid(self.procs.len() as u32)
    }

    /// Inserts a process.
    ///
    /// # Panics
    ///
    /// Panics if the process's pid is not the next free pid.
    pub fn insert(&mut self, p: Process) -> Pid {
        assert_eq!(p.pid, self.next_pid(), "pid mismatch");
        let pid = p.pid;
        self.procs.push(p);
        pid
    }

    /// Shared access.
    pub fn get(&self, pid: Pid) -> &Process {
        &self.procs[pid.0 as usize]
    }

    /// Exclusive access.
    pub fn get_mut(&mut self, pid: Pid) -> &mut Process {
        &mut self.procs[pid.0 as usize]
    }

    /// Iterates over all processes.
    pub fn iter(&self) -> impl Iterator<Item = &Process> {
        self.procs.iter()
    }

    /// Iterates mutably over all processes.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Process> {
        self.procs.iter_mut()
    }

    /// Number of processes ever created.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True when no process was ever created.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }
}

/// Per-CPU scheduler state.
#[derive(Debug)]
pub struct CpuState {
    /// The home assignment of this CPU.
    pub assignment: CpuAssignment,
    rotor: Option<SharedCpuRotor>,
    /// Currently running process.
    pub running: Option<Pid>,
    /// When the current process was dispatched.
    pub run_start: SimTime,
    /// When its time slice expires.
    pub slice_end: SimTime,
    /// Dispatch generation; stale `OpDone` events carry an old value.
    pub gen: u64,
    /// Whether the running process was loaned from a non-home SPU.
    pub loaned: bool,
    /// Start of the current idle period, if idle.
    pub idle_since: Option<SimTime>,
    /// Accumulated idle time.
    pub idle_total: SimDuration,
    /// Accumulated busy time.
    pub busy_total: SimDuration,
    /// Whether the CPU is powered on. Offline CPUs neither run nor
    /// receive dispatches (fault injection).
    pub online: bool,
}

impl CpuState {
    fn new(assignment: CpuAssignment) -> Self {
        let rotor = match &assignment {
            CpuAssignment::TimeShared(entries) => Some(SharedCpuRotor::new(entries.clone())),
            CpuAssignment::Dedicated(_) => None,
        };
        CpuState {
            assignment,
            rotor,
            running: None,
            run_start: SimTime::ZERO,
            slice_end: SimTime::ZERO,
            gen: 0,
            loaned: false,
            idle_since: Some(SimTime::ZERO),
            idle_total: SimDuration::ZERO,
            busy_total: SimDuration::ZERO,
            online: true,
        }
    }

    /// Whether the CPU has no running process.
    pub fn is_idle(&self) -> bool {
        self.running.is_none()
    }

    /// Whether the CPU can accept a dispatch: online and idle.
    pub fn is_available(&self) -> bool {
        self.online && self.running.is_none()
    }
}

/// The machine-wide CPU scheduler.
///
/// # Examples
///
/// ```
/// use smp_kernel::Scheduler;
/// use spu_core::{Scheme, SpuSet};
///
/// let spus = SpuSet::equal_users(2);
/// let s = Scheduler::new(Scheme::PIso, 8, &spus);
/// assert_eq!(s.cpu_count(), 8);
/// ```
#[derive(Debug)]
pub struct Scheduler {
    scheme: Scheme,
    cpus: Vec<CpuState>,
    ready: Vec<Vec<Pid>>,
    seq: u64,
    spus: SpuSet,
}

impl Scheduler {
    /// Creates the scheduler, computing the hybrid CPU partition.
    pub fn new(scheme: Scheme, n_cpus: usize, spus: &SpuSet) -> Self {
        let partition = CpuPartition::compute(n_cpus, spus);
        Scheduler {
            scheme,
            cpus: partition
                .assignments()
                .iter()
                .cloned()
                .map(CpuState::new)
                .collect(),
            ready: vec![Vec::new(); spus.total_count()],
            seq: 0,
            spus: spus.clone(),
        }
    }

    /// Number of CPUs.
    pub fn cpu_count(&self) -> usize {
        self.cpus.len()
    }

    /// Access to a CPU's state.
    pub fn cpu(&self, i: usize) -> &CpuState {
        &self.cpus[i]
    }

    /// Mutable access to a CPU's state.
    pub fn cpu_mut(&mut self, i: usize) -> &mut CpuState {
        &mut self.cpus[i]
    }

    /// Puts a ready process on its SPU's run queue.
    ///
    /// # Panics
    ///
    /// Panics if the process is not in the `Ready` state or already
    /// queued.
    pub fn enqueue(&mut self, procs: &mut ProcTable, pid: Pid) {
        let p = procs.get_mut(pid);
        assert_eq!(p.state, ProcState::Ready, "enqueue of non-ready {pid:?}");
        let spu = p.spu;
        p.ready_seq = self.seq;
        self.seq += 1;
        debug_assert!(
            !self.ready[spu.index()].contains(&pid),
            "{pid:?} queued twice"
        );
        self.ready[spu.index()].push(pid);
    }

    /// Whether any process is queued for `spu`.
    pub fn has_ready(&self, spu: SpuId) -> bool {
        !self.ready[spu.index()].is_empty()
    }

    /// Total queued processes.
    pub fn ready_count(&self) -> usize {
        self.ready.iter().map(Vec::len).sum()
    }

    /// Removes and returns the highest-priority ready process of `spu`
    /// (lowest priority band, then FIFO).
    fn take_best_of(&mut self, procs: &ProcTable, spu: SpuId) -> Option<Pid> {
        let queue = &mut self.ready[spu.index()];
        let best = queue
            .iter()
            .enumerate()
            .min_by_key(|(_, &pid)| {
                let p = procs.get(pid);
                (priority_band(p), p.ready_seq)
            })
            .map(|(i, _)| i)?;
        Some(queue.swap_remove(best))
    }

    /// Removes and returns the globally highest-priority ready process.
    fn take_best_global(&mut self, procs: &ProcTable) -> Option<(SpuId, Pid)> {
        let mut best: Option<(i64, u64, SpuId)> = None;
        for spu in self.spus.all_ids() {
            if let Some(&pid) = self.ready[spu.index()].iter().min_by_key(|&&pid| {
                let p = procs.get(pid);
                (priority_band(p), p.ready_seq)
            }) {
                let p = procs.get(pid);
                let key = (priority_band(p), p.ready_seq);
                if best.is_none_or(|(bb, bs, _)| key < (bb, bs)) {
                    best = Some((key.0, key.1, spu));
                }
            }
        }
        let (_, _, spu) = best?;
        let pid = self.take_best_of(procs, spu)?;
        Some((spu, pid))
    }

    /// Chooses the next process for CPU `cpu_idx` following the scheme's
    /// rules. Returns `(pid, loaned)` or `None` if the CPU should idle.
    pub fn pick(&mut self, procs: &ProcTable, cpu_idx: usize) -> Option<(Pid, bool)> {
        if !self.cpus[cpu_idx].online {
            return None;
        }
        if self.scheme == Scheme::Smp {
            return self.take_best_global(procs).map(|(_, pid)| (pid, false));
        }
        // Home pick.
        let assignment = self.cpus[cpu_idx].assignment.clone();
        let home = match assignment {
            CpuAssignment::Dedicated(spu) => self.take_best_of(procs, spu),
            CpuAssignment::TimeShared(_) => {
                let mut rotor = self.cpus[cpu_idx].rotor.take();
                let granted = rotor
                    .as_mut()
                    .and_then(|r| r.grant(|spu| !self.ready[spu.index()].is_empty()));
                self.cpus[cpu_idx].rotor = rotor;
                granted.and_then(|spu| self.take_best_of(procs, spu))
            }
        };
        if let Some(pid) = home {
            return Some((pid, false));
        }
        if self.scheme == Scheme::PIso {
            // Idle CPU: relax the SPU restriction and loan the CPU to the
            // highest-priority process of any SPU.
            return self.take_best_global(procs).map(|(_, pid)| (pid, true));
        }
        None
    }

    /// Finds an idle CPU suitable for a newly runnable process of `spu`:
    /// an idle home CPU first, then (PIso/SMP) any idle CPU.
    pub fn find_idle_for(&self, spu: SpuId) -> Option<usize> {
        if self.scheme != Scheme::Smp {
            if let Some(i) = self
                .cpus
                .iter()
                .position(|c| c.is_available() && c.assignment.is_home_of(spu))
            {
                return Some(i);
            }
        }
        if self.scheme.shares_idle_resources() || !spu.is_user() {
            self.cpus.iter().position(|c| c.is_available())
        } else {
            None
        }
    }

    /// Whether a loaned CPU should be revoked: it runs a borrowed process
    /// while a home-SPU process waits and no home CPU is free (§3.1).
    pub fn needs_revocation(&self, cpu_idx: usize) -> bool {
        let c = &self.cpus[cpu_idx];
        if !c.online || !c.loaned || c.running.is_none() {
            return false;
        }
        c.assignment
            .home_spus()
            .iter()
            .any(|spu| !self.ready[spu.index()].is_empty())
    }

    /// Marks a CPU online or offline. The caller handles preempting a
    /// running process and rebalancing the partition.
    pub fn set_online(&mut self, cpu_idx: usize, online: bool) {
        self.cpus[cpu_idx].online = online;
    }

    /// Number of online CPUs.
    pub fn online_count(&self) -> usize {
        self.cpus.iter().filter(|c| c.online).count()
    }

    /// Re-derives the CPU partition over the *online* CPUs, mapping the
    /// surviving assignments onto them in index order (offline CPUs keep
    /// a stale assignment but can never be picked). Loan flags of
    /// running processes are recomputed against the new homes, so
    /// [`needs_revocation`](Self::needs_revocation) revokes loans that
    /// exceed an SPU's shrunken share.
    pub fn rebalance(&mut self, procs: &ProcTable) {
        let online: Vec<usize> = (0..self.cpus.len())
            .filter(|&i| self.cpus[i].online)
            .collect();
        if online.is_empty() {
            return;
        }
        let partition = CpuPartition::compute(online.len(), &self.spus);
        for (&cpu_idx, assignment) in online.iter().zip(partition.assignments()) {
            let c = &mut self.cpus[cpu_idx];
            c.assignment = assignment.clone();
            c.rotor = match assignment {
                CpuAssignment::TimeShared(entries) => Some(SharedCpuRotor::new(entries.clone())),
                CpuAssignment::Dedicated(_) => None,
            };
            if let Some(pid) = c.running {
                c.loaned =
                    self.scheme != Scheme::Smp && !c.assignment.is_home_of(procs.get(pid).spu);
            }
        }
    }

    /// Removes a queued process from its SPU's run queue (crash
    /// recovery). Returns whether it was queued.
    pub fn dequeue(&mut self, procs: &ProcTable, pid: Pid) -> bool {
        let queue = &mut self.ready[procs.get(pid).spu.index()];
        match queue.iter().position(|&p| p == pid) {
            Some(i) => {
                queue.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Applies priority decay to every process (called each tick).
    pub fn decay_priorities(&self, procs: &mut ProcTable) {
        for p in procs.iter_mut() {
            p.p_cpu *= P_CPU_DECAY;
        }
    }

    /// The scheme in force.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use std::sync::Arc;

    fn table_with(n: u32, spu_of: impl Fn(u32) -> SpuId) -> ProcTable {
        let prog = Program::builder("t").build();
        let mut t = ProcTable::new();
        for i in 0..n {
            t.insert(Process::new(
                Pid(i),
                spu_of(i),
                None,
                Arc::clone(&prog),
                None,
                SimTime::ZERO,
            ));
        }
        t
    }

    #[test]
    fn smp_picks_global_best_priority() {
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::Smp, 2, &spus);
        let mut procs = table_with(2, |i| SpuId::user(i % 2));
        procs.get_mut(Pid(0)).p_cpu = 500.0;
        procs.get_mut(Pid(1)).p_cpu = 1.0;
        s.enqueue(&mut procs, Pid(0));
        s.enqueue(&mut procs, Pid(1));
        let (pid, loaned) = s.pick(&procs, 0).unwrap();
        assert_eq!(pid, Pid(1));
        assert!(!loaned);
    }

    #[test]
    fn quota_cpu_idles_when_home_empty() {
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::Quota, 2, &spus);
        let mut procs = table_with(1, |_| SpuId::user(1));
        s.enqueue(&mut procs, Pid(0));
        // CPU 0 is user0's home; user0 has nothing: the CPU idles even
        // though user1 has work.
        let home0 = s.cpu(0).assignment.clone();
        let cpu_for_user1 = if home0.is_home_of(SpuId::user(1)) {
            1
        } else {
            0
        };
        assert!(s.pick(&procs, cpu_for_user1).is_none());
    }

    #[test]
    fn piso_loans_idle_cpu() {
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::PIso, 2, &spus);
        let mut procs = table_with(1, |_| SpuId::user(1));
        s.enqueue(&mut procs, Pid(0));
        let cpu_of_user0 = (0..2)
            .find(|&i| s.cpu(i).assignment.is_home_of(SpuId::user(0)))
            .unwrap();
        let (pid, loaned) = s.pick(&procs, cpu_of_user0).unwrap();
        assert_eq!(pid, Pid(0));
        assert!(loaned, "cross-SPU pick must be marked as a loan");
    }

    #[test]
    fn home_process_beats_loan() {
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::PIso, 2, &spus);
        let mut procs = table_with(2, SpuId::user);
        // Foreign process has much better priority...
        procs.get_mut(Pid(1)).p_cpu = 0.0;
        procs.get_mut(Pid(0)).p_cpu = 50.0;
        s.enqueue(&mut procs, Pid(0));
        s.enqueue(&mut procs, Pid(1));
        let cpu_of_user0 = (0..2)
            .find(|&i| s.cpu(i).assignment.is_home_of(SpuId::user(0)))
            .unwrap();
        // ...but the home CPU still picks its own SPU's process.
        let (pid, loaned) = s.pick(&procs, cpu_of_user0).unwrap();
        assert_eq!(pid, Pid(0));
        assert!(!loaned);
    }

    #[test]
    fn revocation_flagged_when_home_work_arrives() {
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::PIso, 2, &spus);
        let mut procs = table_with(2, SpuId::user);
        let cpu_of_user0 = (0..2)
            .find(|&i| s.cpu(i).assignment.is_home_of(SpuId::user(0)))
            .unwrap();
        // Loan user0's CPU to user1's process.
        s.enqueue(&mut procs, Pid(1));
        let (pid, loaned) = s.pick(&procs, cpu_of_user0).unwrap();
        assert_eq!(pid, Pid(1));
        assert!(loaned);
        s.cpu_mut(cpu_of_user0).running = Some(pid);
        s.cpu_mut(cpu_of_user0).loaned = true;
        assert!(!s.needs_revocation(cpu_of_user0));
        // A home process becomes ready: revocation needed.
        s.enqueue(&mut procs, Pid(0));
        assert!(s.needs_revocation(cpu_of_user0));
    }

    #[test]
    fn fifo_among_equal_priorities() {
        let spus = SpuSet::equal_users(1);
        let mut s = Scheduler::new(Scheme::PIso, 1, &spus);
        let mut procs = table_with(3, |_| SpuId::user(0));
        s.enqueue(&mut procs, Pid(2));
        s.enqueue(&mut procs, Pid(0));
        s.enqueue(&mut procs, Pid(1));
        assert_eq!(s.pick(&procs, 0).unwrap().0, Pid(2));
        assert_eq!(s.pick(&procs, 0).unwrap().0, Pid(0));
        assert_eq!(s.pick(&procs, 0).unwrap().0, Pid(1));
        assert!(s.pick(&procs, 0).is_none());
    }

    #[test]
    fn find_idle_prefers_home() {
        let spus = SpuSet::equal_users(2);
        let s = Scheduler::new(Scheme::PIso, 2, &spus);
        let home1 = s.find_idle_for(SpuId::user(1)).unwrap();
        assert!(s.cpu(home1).assignment.is_home_of(SpuId::user(1)));
    }

    #[test]
    fn find_idle_quota_never_crosses() {
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::Quota, 2, &spus);
        let home1 = (0..2)
            .find(|&i| s.cpu(i).assignment.is_home_of(SpuId::user(1)))
            .unwrap();
        s.cpu_mut(home1).running = Some(Pid(0));
        // user1's home CPU is busy; Quota must not hand out the other CPU.
        assert_eq!(s.find_idle_for(SpuId::user(1)), None);
    }

    #[test]
    fn decay_shrinks_p_cpu() {
        let spus = SpuSet::equal_users(1);
        let s = Scheduler::new(Scheme::PIso, 1, &spus);
        let mut procs = table_with(1, |_| SpuId::user(0));
        procs.get_mut(Pid(0)).p_cpu = 100.0;
        s.decay_priorities(&mut procs);
        let v = procs.get(Pid(0)).p_cpu;
        assert!(v < 100.0 && v > 99.0, "{v}");
    }

    #[test]
    fn offline_cpu_never_picks_or_hosts() {
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::Smp, 2, &spus);
        let mut procs = table_with(1, |_| SpuId::user(0));
        s.enqueue(&mut procs, Pid(0));
        s.set_online(0, false);
        assert_eq!(s.online_count(), 1);
        assert!(s.pick(&procs, 0).is_none(), "offline CPU must not pick");
        assert_eq!(s.find_idle_for(SpuId::user(0)), Some(1));
        s.set_online(0, true);
        assert!(s.pick(&procs, 0).is_some());
    }

    #[test]
    fn rebalance_rehomes_surviving_cpus() {
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::Quota, 2, &spus);
        let procs = table_with(2, SpuId::user);
        s.set_online(0, false);
        s.rebalance(&procs);
        // The lone surviving CPU must now be home to both SPUs.
        assert!(s.cpu(1).assignment.is_home_of(SpuId::user(0)));
        assert!(s.cpu(1).assignment.is_home_of(SpuId::user(1)));
        // Coming back online and rebalancing restores dedicated homes.
        s.set_online(0, true);
        s.rebalance(&procs);
        let homes_0 = s.cpu(0).assignment.is_home_of(SpuId::user(0))
            || s.cpu(1).assignment.is_home_of(SpuId::user(0));
        assert!(homes_0);
    }

    #[test]
    fn rebalance_recomputes_loan_flags() {
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::PIso, 2, &spus);
        let mut procs = table_with(1, |_| SpuId::user(1));
        let cpu_of_user0 = (0..2)
            .find(|&i| s.cpu(i).assignment.is_home_of(SpuId::user(0)))
            .unwrap();
        s.enqueue(&mut procs, Pid(0));
        let (pid, loaned) = s.pick(&procs, cpu_of_user0).unwrap();
        assert!(loaned);
        s.cpu_mut(cpu_of_user0).running = Some(pid);
        s.cpu_mut(cpu_of_user0).loaned = true;
        // The other CPU dies; the survivor becomes home to both SPUs, so
        // the borrowed process is no longer a loan.
        let other = 1 - cpu_of_user0;
        s.set_online(other, false);
        s.rebalance(&procs);
        assert!(!s.cpu(cpu_of_user0).loaned);
    }

    #[test]
    fn dequeue_removes_only_queued() {
        let spus = SpuSet::equal_users(1);
        let mut s = Scheduler::new(Scheme::PIso, 1, &spus);
        let mut procs = table_with(2, |_| SpuId::user(0));
        s.enqueue(&mut procs, Pid(0));
        assert!(s.dequeue(&procs, Pid(0)));
        assert!(!s.dequeue(&procs, Pid(0)));
        assert!(!s.dequeue(&procs, Pid(1)));
        assert_eq!(s.ready_count(), 0);
    }

    #[test]
    #[should_panic(expected = "pid mismatch")]
    fn wrong_pid_insert_panics() {
        let prog = Program::builder("t").build();
        let mut t = ProcTable::new();
        t.insert(Process::new(
            Pid(5),
            SpuId::user(0),
            None,
            prog,
            None,
            SimTime::ZERO,
        ));
    }
}
