//! The hybrid CPU scheduler (§3.1).
//!
//! "To provide isolation the normal priority-based scheduling behavior is
//! modified by having CPUs select processes only from their home SPUs
//! when scheduling ... Sharing is implemented by relaxing the SPU ID
//! restriction when a processor becomes idle. ... Currently, the process
//! with the highest priority is chosen."
//!
//! Priorities are classic UNIX decay-usage: a process's `p_cpu` rises
//! while it runs and decays over time; lower values win. Between
//! processes of the same SPU the standard discipline applies unchanged.
//!
//! # Scaling structure
//!
//! Ready processes live on **per-CPU run queues**: a wake-up places the
//! process on the least-loaded online home CPU of its SPU, and a CPU's
//! home pick scans only its SPU's home queues. Cross-SPU work stealing
//! (the SMP global pick and the PIso idle-CPU loan) scans the non-empty
//! queues — same-SPU work always wins first, and a stolen pick is
//! marked `loaned` exactly as before. Because every pick minimizes the
//! globally unique key `(priority band, ready_seq)` over the same
//! candidate set the old per-SPU queues exposed, scheduling decisions
//! are *byte-identical* to the single-queue scheduler; only the scan
//! cost changes. Idle CPUs sit on an ordered free list so wake-up
//! placement is O(log CPUs) instead of a linear availability scan, and
//! CPUs running borrowed processes sit on a loaned list so revocation
//! scans touch only actual loans.

use std::collections::BTreeSet;

use event_sim::{SimDuration, SimTime};
use spu_core::{CpuAssignment, CpuPartition, Scheme, SharedCpuRotor, SpuId, SpuSet};

use crate::process::{Pid, ProcState, Process};

/// Sentinel for "not on any run queue" in [`Process::run_q`].
pub(crate) const NO_QUEUE: u32 = u32::MAX;

/// Per-tick multiplicative decay of `p_cpu` (half-life ≈ 1 s at a 10 ms
/// tick).
pub const P_CPU_DECAY: f64 = 0.9931;

/// Width of one priority band in `p_cpu` milliseconds. Like classic
/// UNIX/IRIX schedulers, priorities are coarse bands with round-robin
/// (FIFO) inside a band: two compute-bound processes whose decayed usage
/// differs by less than a band are *equal* and rotate, rather than the
/// infinitesimally-less-used one always winning.
pub const PRIORITY_BAND_MS: f64 = 120.0;

/// The discrete priority of a process (lower wins).
fn priority_band(p: &Process) -> i64 {
    (p.p_cpu / PRIORITY_BAND_MS) as i64
}

/// A process table indexed by [`Pid`]. Processes are never removed;
/// exited processes stay in the `Done` state.
#[derive(Debug, Default)]
pub struct ProcTable {
    procs: Vec<Process>,
}

impl ProcTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ProcTable::default()
    }

    /// The pid the next inserted process will get.
    pub fn next_pid(&self) -> Pid {
        Pid(self.procs.len() as u32)
    }

    /// Inserts a process.
    ///
    /// # Panics
    ///
    /// Panics if the process's pid is not the next free pid.
    pub fn insert(&mut self, p: Process) -> Pid {
        assert_eq!(p.pid, self.next_pid(), "pid mismatch");
        let pid = p.pid;
        self.procs.push(p);
        pid
    }

    /// Shared access.
    pub fn get(&self, pid: Pid) -> &Process {
        &self.procs[pid.0 as usize]
    }

    /// Exclusive access.
    pub fn get_mut(&mut self, pid: Pid) -> &mut Process {
        &mut self.procs[pid.0 as usize]
    }

    /// Iterates over all processes.
    pub fn iter(&self) -> impl Iterator<Item = &Process> {
        self.procs.iter()
    }

    /// Iterates mutably over all processes.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Process> {
        self.procs.iter_mut()
    }

    /// Number of processes ever created.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True when no process was ever created.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }
}

/// Per-CPU scheduler state.
#[derive(Debug)]
pub struct CpuState {
    /// The home assignment of this CPU.
    pub assignment: CpuAssignment,
    rotor: Option<SharedCpuRotor>,
    /// Currently running process.
    pub running: Option<Pid>,
    /// When the current process was dispatched.
    pub run_start: SimTime,
    /// When its time slice expires.
    pub slice_end: SimTime,
    /// Dispatch generation; stale `OpDone` events carry an old value.
    pub gen: u64,
    /// Whether the running process was loaned from a non-home SPU.
    pub loaned: bool,
    /// Start of the current idle period, if idle.
    pub idle_since: Option<SimTime>,
    /// Accumulated idle time.
    pub idle_total: SimDuration,
    /// Accumulated busy time.
    pub busy_total: SimDuration,
    /// Whether the CPU is powered on. Offline CPUs neither run nor
    /// receive dispatches (fault injection).
    pub online: bool,
}

impl CpuState {
    fn new(assignment: CpuAssignment) -> Self {
        let rotor = match &assignment {
            CpuAssignment::TimeShared(entries) => Some(SharedCpuRotor::new(entries.clone())),
            CpuAssignment::Dedicated(_) => None,
        };
        CpuState {
            assignment,
            rotor,
            running: None,
            run_start: SimTime::ZERO,
            slice_end: SimTime::ZERO,
            gen: 0,
            loaned: false,
            idle_since: Some(SimTime::ZERO),
            idle_total: SimDuration::ZERO,
            busy_total: SimDuration::ZERO,
            online: true,
        }
    }

    /// Whether the CPU has no running process.
    pub fn is_idle(&self) -> bool {
        self.running.is_none()
    }

    /// Whether the CPU can accept a dispatch: online and idle.
    pub fn is_available(&self) -> bool {
        self.online && self.running.is_none()
    }
}

/// The machine-wide CPU scheduler.
///
/// # Examples
///
/// ```
/// use smp_kernel::Scheduler;
/// use spu_core::{Scheme, SpuSet};
///
/// let spus = SpuSet::equal_users(2);
/// let s = Scheduler::new(Scheme::PIso, 8, &spus);
/// assert_eq!(s.cpu_count(), 8);
/// ```
#[derive(Debug)]
pub struct Scheduler {
    scheme: Scheme,
    cpus: Vec<CpuState>,
    /// Per-CPU run queues, plus one trailing queue for processes whose
    /// SPU has no home CPU (kernel/shared-SPU work).
    queues: Vec<Vec<Pid>>,
    /// Queues with at least one entry; global scans skip the rest.
    busy_queues: BTreeSet<usize>,
    /// Ready-process count per SPU (dense [`SpuId::index`]).
    spu_ready: Vec<u32>,
    /// Total queued processes.
    total_ready: usize,
    /// Home CPUs of each SPU in ascending CPU index; rebuilt on
    /// rebalance.
    spu_home: Vec<Vec<u32>>,
    /// The idle free list: online CPUs with no running process.
    idle: BTreeSet<usize>,
    /// Online CPUs currently running a borrowed (loaned) process.
    loaned: BTreeSet<usize>,
    seq: u64,
    spus: SpuSet,
}

impl Scheduler {
    /// Creates the scheduler, computing the hybrid CPU partition.
    pub fn new(scheme: Scheme, n_cpus: usize, spus: &SpuSet) -> Self {
        let partition = CpuPartition::compute(n_cpus, spus);
        let mut s = Scheduler {
            scheme,
            cpus: partition
                .assignments()
                .iter()
                .cloned()
                .map(CpuState::new)
                .collect(),
            queues: vec![Vec::new(); n_cpus + 1],
            busy_queues: BTreeSet::new(),
            spu_ready: vec![0; spus.total_count()],
            total_ready: 0,
            spu_home: vec![Vec::new(); spus.total_count()],
            idle: (0..n_cpus).collect(),
            loaned: BTreeSet::new(),
            seq: 0,
            spus: spus.clone(),
        };
        s.rebuild_homes();
        s
    }

    /// Rebuilds the SPU → home-CPU index from the online CPUs'
    /// assignments (ascending CPU order).
    fn rebuild_homes(&mut self) {
        for home in &mut self.spu_home {
            home.clear();
        }
        for (i, c) in self.cpus.iter().enumerate() {
            if !c.online {
                continue;
            }
            match &c.assignment {
                CpuAssignment::Dedicated(spu) => self.spu_home[spu.index()].push(i as u32),
                CpuAssignment::TimeShared(entries) => {
                    for (spu, _) in entries {
                        self.spu_home[spu.index()].push(i as u32);
                    }
                }
            }
        }
    }

    /// Reconciles the idle free list and the loaned list with a CPU's
    /// state. Call after mutating `running`, `loaned` or `online`
    /// outside the scheduler's own methods.
    pub fn sync_cpu(&mut self, i: usize) {
        let c = &self.cpus[i];
        if c.is_available() {
            self.idle.insert(i);
        } else {
            self.idle.remove(&i);
        }
        if c.online && c.loaned && c.running.is_some() {
            self.loaned.insert(i);
        } else {
            self.loaned.remove(&i);
        }
    }

    /// The lowest loaned CPU index `>= from`, reading live state so
    /// revocation sweeps match a full ascending scan exactly.
    pub fn next_loaned_cpu(&self, from: usize) -> Option<usize> {
        self.loaned.range(from..).next().copied()
    }

    /// The lowest idle online CPU index `>= from` (live view of the
    /// free list).
    pub fn next_idle_cpu(&self, from: usize) -> Option<usize> {
        self.idle.range(from..).next().copied()
    }

    /// Number of CPUs.
    pub fn cpu_count(&self) -> usize {
        self.cpus.len()
    }

    /// Access to a CPU's state.
    pub fn cpu(&self, i: usize) -> &CpuState {
        &self.cpus[i]
    }

    /// Mutable access to a CPU's state.
    pub fn cpu_mut(&mut self, i: usize) -> &mut CpuState {
        &mut self.cpus[i]
    }

    /// Puts a ready process on a run queue: the least-loaded online home
    /// CPU of its SPU (ties to the lowest index), or the homeless queue
    /// when its SPU has no home CPU.
    ///
    /// # Panics
    ///
    /// Panics if the process is not in the `Ready` state or already
    /// queued.
    pub fn enqueue(&mut self, procs: &mut ProcTable, pid: Pid) {
        let p = procs.get_mut(pid);
        assert_eq!(p.state, ProcState::Ready, "enqueue of non-ready {pid:?}");
        let spu = p.spu;
        p.ready_seq = self.seq;
        self.seq += 1;
        debug_assert_eq!(p.run_q, NO_QUEUE, "{pid:?} queued twice");
        let q = self.place(spu);
        self.push_to(procs, q, pid);
    }

    /// The queue a newly ready process of `spu` lands on.
    fn place(&self, spu: SpuId) -> usize {
        let mut best: Option<(usize, usize)> = None; // (len, queue)
        for &c in &self.spu_home[spu.index()] {
            let len = self.queues[c as usize].len();
            if len == 0 {
                return c as usize;
            }
            if best.is_none_or(|(bl, _)| len < bl) {
                best = Some((len, c as usize));
            }
        }
        best.map(|(_, q)| q).unwrap_or(self.queues.len() - 1)
    }

    fn push_to(&mut self, procs: &mut ProcTable, q: usize, pid: Pid) {
        let p = procs.get_mut(pid);
        let spu = p.spu;
        p.run_q = q as u32;
        p.run_q_slot = self.queues[q].len() as u32;
        self.queues[q].push(pid);
        self.busy_queues.insert(q);
        self.spu_ready[spu.index()] += 1;
        self.total_ready += 1;
    }

    /// Removes the entry at `(q, slot)`, patching the swapped-in
    /// element's membership record.
    fn remove_at(&mut self, procs: &mut ProcTable, q: usize, slot: usize) -> Pid {
        let queue = &mut self.queues[q];
        let pid = queue.swap_remove(slot);
        if let Some(&moved) = queue.get(slot) {
            procs.get_mut(moved).run_q_slot = slot as u32;
        }
        if queue.is_empty() {
            self.busy_queues.remove(&q);
        }
        let p = procs.get_mut(pid);
        p.run_q = NO_QUEUE;
        self.spu_ready[p.spu.index()] -= 1;
        self.total_ready -= 1;
        pid
    }

    /// Whether any process is queued for `spu`.
    pub fn has_ready(&self, spu: SpuId) -> bool {
        self.spu_ready[spu.index()] > 0
    }

    /// Total queued processes.
    pub fn ready_count(&self) -> usize {
        self.total_ready
    }

    /// Removes and returns the highest-priority ready process of `spu`
    /// (lowest priority band, then FIFO), scanning only the SPU's home
    /// queues.
    fn take_best_of(&mut self, procs: &mut ProcTable, spu: SpuId) -> Option<Pid> {
        if self.spu_ready[spu.index()] == 0 {
            return None;
        }
        let homeless = [(self.queues.len() - 1) as u32];
        let home = &self.spu_home[spu.index()];
        let candidates: &[u32] = if home.is_empty() { &homeless } else { home };
        let mut best: Option<(i64, u64, usize, usize)> = None;
        for &qi in candidates {
            for (slot, &pid) in self.queues[qi as usize].iter().enumerate() {
                let p = procs.get(pid);
                if p.spu != spu {
                    continue;
                }
                let key = (priority_band(p), p.ready_seq);
                if best.is_none_or(|(bb, bs, _, _)| key < (bb, bs)) {
                    best = Some((key.0, key.1, qi as usize, slot));
                }
            }
        }
        let (_, _, q, slot) = best?;
        Some(self.remove_at(procs, q, slot))
    }

    /// Removes and returns the globally highest-priority ready process
    /// (the cross-SPU steal), scanning only non-empty queues.
    fn take_best_global(&mut self, procs: &mut ProcTable) -> Option<Pid> {
        if self.total_ready == 0 {
            return None;
        }
        let mut best: Option<(i64, u64, usize, usize)> = None;
        for &q in &self.busy_queues {
            for (slot, &pid) in self.queues[q].iter().enumerate() {
                let p = procs.get(pid);
                let key = (priority_band(p), p.ready_seq);
                if best.is_none_or(|(bb, bs, _, _)| key < (bb, bs)) {
                    best = Some((key.0, key.1, q, slot));
                }
            }
        }
        let (_, _, q, slot) = best?;
        Some(self.remove_at(procs, q, slot))
    }

    /// Ready sibling SPUs (same tenant, self excluded) of a CPU's home
    /// SPUs, deduplicated in ascending user-index order. Empty on flat
    /// SPU sets.
    fn sibling_candidates(&self, cpu_idx: usize) -> Vec<SpuId> {
        let Some(tree) = self.spus.tree() else {
            return Vec::new();
        };
        let mut out: Vec<SpuId> = Vec::new();
        let add = |home: SpuId, out: &mut Vec<SpuId>| {
            for s in tree.siblings(home) {
                if self.spu_ready[s.index()] > 0 && !out.contains(&s) {
                    out.push(s);
                }
            }
        };
        match &self.cpus[cpu_idx].assignment {
            CpuAssignment::Dedicated(spu) => add(*spu, &mut out),
            CpuAssignment::TimeShared(entries) => {
                for (spu, _) in entries {
                    add(*spu, &mut out);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Removes and returns the highest-priority ready process among the
    /// given SPUs (the intra-tenant steal), scanning only non-empty
    /// queues.
    fn take_best_among(&mut self, procs: &mut ProcTable, spus: &[SpuId]) -> Option<Pid> {
        if spus.iter().all(|s| self.spu_ready[s.index()] == 0) {
            return None;
        }
        let mut best: Option<(i64, u64, usize, usize)> = None;
        for &q in &self.busy_queues {
            for (slot, &pid) in self.queues[q].iter().enumerate() {
                let p = procs.get(pid);
                if !spus.contains(&p.spu) {
                    continue;
                }
                let key = (priority_band(p), p.ready_seq);
                if best.is_none_or(|(bb, bs, _, _)| key < (bb, bs)) {
                    best = Some((key.0, key.1, q, slot));
                }
            }
        }
        let (_, _, q, slot) = best?;
        Some(self.remove_at(procs, q, slot))
    }

    /// Chooses the next process for CPU `cpu_idx` following the scheme's
    /// rules. Returns `(pid, loaned)` or `None` if the CPU should idle.
    /// Steal order: the CPU's home SPUs first, then (PIso) any SPU with
    /// the pick marked as a loan.
    pub fn pick(&mut self, procs: &mut ProcTable, cpu_idx: usize) -> Option<(Pid, bool)> {
        if !self.cpus[cpu_idx].online {
            return None;
        }
        if self.scheme == Scheme::Smp {
            return self.take_best_global(procs).map(|pid| (pid, false));
        }
        // Home pick.
        let assignment = self.cpus[cpu_idx].assignment.clone();
        let home = match assignment {
            CpuAssignment::Dedicated(spu) => self.take_best_of(procs, spu),
            CpuAssignment::TimeShared(_) => {
                let mut rotor = self.cpus[cpu_idx].rotor.take();
                let granted = rotor
                    .as_mut()
                    .and_then(|r| r.grant(|spu| self.spu_ready[spu.index()] > 0));
                self.cpus[cpu_idx].rotor = rotor;
                granted.and_then(|spu| self.take_best_of(procs, spu))
            }
        };
        if let Some(pid) = home {
            return Some((pid, false));
        }
        if self.scheme == Scheme::PIso {
            // Hierarchical sets relax the restriction in two steps: an
            // idle CPU offers itself to its tenant's other services
            // (sibling-first lending) before escalating machine-wide.
            if self.spus.is_hierarchical() {
                let siblings = self.sibling_candidates(cpu_idx);
                if let Some(pid) = self.take_best_among(procs, &siblings) {
                    return Some((pid, true));
                }
            }
            // Idle CPU: relax the SPU restriction and loan the CPU to the
            // highest-priority process of any SPU.
            return self.take_best_global(procs).map(|pid| (pid, true));
        }
        None
    }

    /// Finds an idle CPU suitable for a newly runnable process of `spu`
    /// via the free list: the lowest-index idle home CPU first, then
    /// (hierarchical PIso) the lowest-index idle CPU homed to a sibling
    /// service, then (PIso/SMP) the lowest-index idle CPU overall.
    pub fn find_idle_for(&self, spu: SpuId) -> Option<usize> {
        if self.scheme != Scheme::Smp {
            let mut best: Option<usize> = None;
            for &c in &self.spu_home[spu.index()] {
                if self.idle.contains(&(c as usize)) && best.is_none_or(|b| (c as usize) < b) {
                    best = Some(c as usize);
                }
            }
            if best.is_some() {
                return best;
            }
        }
        if self.scheme == Scheme::PIso {
            if let Some(tree) = self.spus.tree() {
                // Borrow from the tenant's own pool before a stranger's.
                let mut best: Option<usize> = None;
                for s in tree.siblings(spu) {
                    for &c in &self.spu_home[s.index()] {
                        if self.idle.contains(&(c as usize))
                            && best.is_none_or(|b| (c as usize) < b)
                        {
                            best = Some(c as usize);
                        }
                    }
                }
                if best.is_some() {
                    return best;
                }
            }
        }
        if self.scheme.shares_idle_resources() || !spu.is_user() {
            self.idle.first().copied()
        } else {
            None
        }
    }

    /// Whether a loaned CPU should be revoked: it runs a borrowed process
    /// while a home-SPU process waits and no home CPU is free (§3.1).
    /// On hierarchical SPU sets a CPU loaned *outside* its tenant is also
    /// revoked when a sibling service of its home has waiting work — the
    /// loan should have stayed inside the tenant. Intra-tenant loans
    /// stand against sibling demand (only home demand reclaims them).
    pub fn needs_revocation(&self, procs: &ProcTable, cpu_idx: usize) -> bool {
        let c = &self.cpus[cpu_idx];
        let Some(running) = c.running else {
            return false;
        };
        if !c.online || !c.loaned {
            return false;
        }
        let home_ready = match &c.assignment {
            CpuAssignment::Dedicated(spu) => self.spu_ready[spu.index()] > 0,
            CpuAssignment::TimeShared(entries) => entries
                .iter()
                .any(|(spu, _)| self.spu_ready[spu.index()] > 0),
        };
        if home_ready {
            return true;
        }
        let Some(tree) = self.spus.tree() else {
            return false;
        };
        let running_spu = procs.get(running).spu;
        let sibling_waits = |home: SpuId| {
            !tree.same_tenant(home, running_spu)
                && tree.siblings(home).any(|s| self.spu_ready[s.index()] > 0)
        };
        match &c.assignment {
            CpuAssignment::Dedicated(spu) => sibling_waits(*spu),
            CpuAssignment::TimeShared(entries) => {
                entries.iter().any(|(spu, _)| sibling_waits(*spu))
            }
        }
    }

    /// Marks a CPU online or offline (updating the free list). The
    /// caller handles preempting a running process and rebalancing the
    /// partition.
    pub fn set_online(&mut self, cpu_idx: usize, online: bool) {
        self.cpus[cpu_idx].online = online;
        self.sync_cpu(cpu_idx);
    }

    /// Number of online CPUs.
    pub fn online_count(&self) -> usize {
        self.cpus.iter().filter(|c| c.online).count()
    }

    /// Re-derives the CPU partition over the *online* CPUs, mapping the
    /// surviving assignments onto them in index order (offline CPUs keep
    /// a stale assignment but can never be picked). Loan flags of
    /// running processes are recomputed against the new homes, so
    /// [`needs_revocation`](Self::needs_revocation) revokes loans that
    /// exceed an SPU's shrunken share. Queued processes are re-placed on
    /// their SPUs' new home CPUs in arrival order (their FIFO stamps are
    /// preserved).
    pub fn rebalance(&mut self, procs: &mut ProcTable) {
        let online: Vec<usize> = (0..self.cpus.len())
            .filter(|&i| self.cpus[i].online)
            .collect();
        if online.is_empty() {
            return;
        }
        let partition = CpuPartition::compute(online.len(), &self.spus);
        for (&cpu_idx, assignment) in online.iter().zip(partition.assignments()) {
            let c = &mut self.cpus[cpu_idx];
            c.assignment = assignment.clone();
            c.rotor = match assignment {
                CpuAssignment::TimeShared(entries) => Some(SharedCpuRotor::new(entries.clone())),
                CpuAssignment::Dedicated(_) => None,
            };
            if let Some(pid) = c.running {
                c.loaned =
                    self.scheme != Scheme::Smp && !c.assignment.is_home_of(procs.get(pid).spu);
            }
        }
        self.rebuild_homes();
        // Membership must follow the new partition: drain every queue
        // and re-place in arrival order without re-stamping.
        let mut queued: Vec<Pid> = Vec::with_capacity(self.total_ready);
        for q in 0..self.queues.len() {
            queued.append(&mut self.queues[q]);
        }
        queued.sort_unstable_by_key(|&pid| procs.get(pid).ready_seq);
        self.busy_queues.clear();
        self.spu_ready.fill(0);
        self.total_ready = 0;
        for pid in queued {
            let q = self.place(procs.get(pid).spu);
            self.push_to(procs, q, pid);
        }
        for i in 0..self.cpus.len() {
            self.sync_cpu(i);
        }
    }

    /// Removes a queued process from its run queue (crash recovery) in
    /// O(1) via its membership record. Returns whether it was queued.
    pub fn dequeue(&mut self, procs: &mut ProcTable, pid: Pid) -> bool {
        let p = procs.get(pid);
        if p.run_q == NO_QUEUE {
            return false;
        }
        let (q, slot) = (p.run_q as usize, p.run_q_slot as usize);
        debug_assert_eq!(self.queues[q][slot], pid, "stale queue membership");
        self.remove_at(procs, q, slot);
        true
    }

    /// Applies priority decay to every process (called each tick).
    pub fn decay_priorities(&self, procs: &mut ProcTable) {
        for p in procs.iter_mut() {
            p.p_cpu *= P_CPU_DECAY;
        }
    }

    /// The scheme in force.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use std::sync::Arc;

    fn table_with(n: u32, spu_of: impl Fn(u32) -> SpuId) -> ProcTable {
        let prog = Program::builder("t").build();
        let mut t = ProcTable::new();
        for i in 0..n {
            t.insert(Process::new(
                Pid(i),
                spu_of(i),
                None,
                Arc::clone(&prog),
                None,
                SimTime::ZERO,
            ));
        }
        t
    }

    #[test]
    fn smp_picks_global_best_priority() {
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::Smp, 2, &spus);
        let mut procs = table_with(2, |i| SpuId::user(i % 2));
        procs.get_mut(Pid(0)).p_cpu = 500.0;
        procs.get_mut(Pid(1)).p_cpu = 1.0;
        s.enqueue(&mut procs, Pid(0));
        s.enqueue(&mut procs, Pid(1));
        let (pid, loaned) = s.pick(&mut procs, 0).unwrap();
        assert_eq!(pid, Pid(1));
        assert!(!loaned);
    }

    #[test]
    fn quota_cpu_idles_when_home_empty() {
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::Quota, 2, &spus);
        let mut procs = table_with(1, |_| SpuId::user(1));
        s.enqueue(&mut procs, Pid(0));
        // CPU 0 is user0's home; user0 has nothing: the CPU idles even
        // though user1 has work.
        let home0 = s.cpu(0).assignment.clone();
        let cpu_for_user1 = if home0.is_home_of(SpuId::user(1)) {
            1
        } else {
            0
        };
        assert!(s.pick(&mut procs, cpu_for_user1).is_none());
    }

    #[test]
    fn piso_loans_idle_cpu() {
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::PIso, 2, &spus);
        let mut procs = table_with(1, |_| SpuId::user(1));
        s.enqueue(&mut procs, Pid(0));
        let cpu_of_user0 = (0..2)
            .find(|&i| s.cpu(i).assignment.is_home_of(SpuId::user(0)))
            .unwrap();
        let (pid, loaned) = s.pick(&mut procs, cpu_of_user0).unwrap();
        assert_eq!(pid, Pid(0));
        assert!(loaned, "cross-SPU pick must be marked as a loan");
    }

    #[test]
    fn home_process_beats_loan() {
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::PIso, 2, &spus);
        let mut procs = table_with(2, SpuId::user);
        // Foreign process has much better priority...
        procs.get_mut(Pid(1)).p_cpu = 0.0;
        procs.get_mut(Pid(0)).p_cpu = 50.0;
        s.enqueue(&mut procs, Pid(0));
        s.enqueue(&mut procs, Pid(1));
        let cpu_of_user0 = (0..2)
            .find(|&i| s.cpu(i).assignment.is_home_of(SpuId::user(0)))
            .unwrap();
        // ...but the home CPU still picks its own SPU's process.
        let (pid, loaned) = s.pick(&mut procs, cpu_of_user0).unwrap();
        assert_eq!(pid, Pid(0));
        assert!(!loaned);
    }

    #[test]
    fn revocation_flagged_when_home_work_arrives() {
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::PIso, 2, &spus);
        let mut procs = table_with(2, SpuId::user);
        let cpu_of_user0 = (0..2)
            .find(|&i| s.cpu(i).assignment.is_home_of(SpuId::user(0)))
            .unwrap();
        // Loan user0's CPU to user1's process.
        s.enqueue(&mut procs, Pid(1));
        let (pid, loaned) = s.pick(&mut procs, cpu_of_user0).unwrap();
        assert_eq!(pid, Pid(1));
        assert!(loaned);
        s.cpu_mut(cpu_of_user0).running = Some(pid);
        s.cpu_mut(cpu_of_user0).loaned = true;
        s.sync_cpu(cpu_of_user0);
        assert!(!s.needs_revocation(&procs, cpu_of_user0));
        // A home process becomes ready: revocation needed.
        s.enqueue(&mut procs, Pid(0));
        assert!(s.needs_revocation(&procs, cpu_of_user0));
    }

    #[test]
    fn fifo_among_equal_priorities() {
        let spus = SpuSet::equal_users(1);
        let mut s = Scheduler::new(Scheme::PIso, 1, &spus);
        let mut procs = table_with(3, |_| SpuId::user(0));
        s.enqueue(&mut procs, Pid(2));
        s.enqueue(&mut procs, Pid(0));
        s.enqueue(&mut procs, Pid(1));
        assert_eq!(s.pick(&mut procs, 0).unwrap().0, Pid(2));
        assert_eq!(s.pick(&mut procs, 0).unwrap().0, Pid(0));
        assert_eq!(s.pick(&mut procs, 0).unwrap().0, Pid(1));
        assert!(s.pick(&mut procs, 0).is_none());
    }

    fn tenanted4() -> SpuSet {
        SpuSet::with_weights(&[1, 1, 1, 1]).with_tree(spu_core::SpuTree::new(vec![
            ("a".into(), 2, vec![0, 1]),
            ("b".into(), 2, vec![2, 3]),
        ]))
    }

    fn home_of(s: &Scheduler, user: u32) -> usize {
        (0..s.cpu_count())
            .find(|&i| s.cpu(i).assignment.is_home_of(SpuId::user(user)))
            .unwrap()
    }

    #[test]
    fn sibling_steal_beats_stranger() {
        let spus = tenanted4();
        let mut s = Scheduler::new(Scheme::PIso, 4, &spus);
        // Pid0: user1 (sibling of user0, worse priority); Pid1: user2
        // (other tenant, better priority).
        let mut procs = table_with(2, |i| SpuId::user(i + 1));
        procs.get_mut(Pid(0)).p_cpu = 500.0;
        procs.get_mut(Pid(1)).p_cpu = 0.0;
        s.enqueue(&mut procs, Pid(0));
        s.enqueue(&mut procs, Pid(1));
        let cpu0 = home_of(&s, 0);
        // user0's idle CPU lends itself inside the tenant first, even
        // though the stranger outranks the sibling.
        let (pid, loaned) = s.pick(&mut procs, cpu0).unwrap();
        assert_eq!(pid, Pid(0), "tenant-mate must be stolen first");
        assert!(loaned);
        // With no sibling work left the loan escalates machine-wide.
        let (pid, loaned) = s.pick(&mut procs, cpu0).unwrap();
        assert_eq!(pid, Pid(1));
        assert!(loaned);
    }

    #[test]
    fn cross_tenant_loan_yields_to_sibling_demand() {
        let spus = tenanted4();
        let mut s = Scheduler::new(Scheme::PIso, 4, &spus);
        // Pid0: user2 (tenant b); Pid1, Pid2: user1 (tenant a).
        let mut procs = table_with(3, |i| SpuId::user([2, 1, 1][i as usize]));
        let cpu0 = home_of(&s, 0);
        // user0's CPU runs a cross-tenant loan.
        s.cpu_mut(cpu0).running = Some(Pid(0));
        s.cpu_mut(cpu0).loaned = true;
        s.sync_cpu(cpu0);
        assert!(!s.needs_revocation(&procs, cpu0));
        // Sibling demand appears: the cross-tenant loan must yield.
        s.enqueue(&mut procs, Pid(1));
        assert!(s.needs_revocation(&procs, cpu0));
        // An intra-tenant loan stands against the same sibling demand.
        s.cpu_mut(cpu0).running = Some(Pid(2));
        s.sync_cpu(cpu0);
        assert!(!s.needs_revocation(&procs, cpu0));
    }

    #[test]
    fn find_idle_prefers_sibling_cpu() {
        let spus = tenanted4();
        let mut s = Scheduler::new(Scheme::PIso, 4, &spus);
        let (h2, h3) = (home_of(&s, 2), home_of(&s, 3));
        // user2's own CPU is busy; its sibling's CPU idles alongside the
        // other tenant's.
        s.cpu_mut(h2).running = Some(Pid(0));
        s.sync_cpu(h2);
        assert_eq!(
            s.find_idle_for(SpuId::user(2)),
            Some(h3),
            "sibling CPU first"
        );
        // Sibling busy too: fall back to the lowest idle CPU anywhere.
        s.cpu_mut(h3).running = Some(Pid(1));
        s.sync_cpu(h3);
        let lowest = (0..4).find(|i| ![h2, h3].contains(i)).unwrap();
        assert_eq!(s.find_idle_for(SpuId::user(2)), Some(lowest));
    }

    #[test]
    fn find_idle_prefers_home() {
        let spus = SpuSet::equal_users(2);
        let s = Scheduler::new(Scheme::PIso, 2, &spus);
        let home1 = s.find_idle_for(SpuId::user(1)).unwrap();
        assert!(s.cpu(home1).assignment.is_home_of(SpuId::user(1)));
    }

    #[test]
    fn find_idle_quota_never_crosses() {
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::Quota, 2, &spus);
        let home1 = (0..2)
            .find(|&i| s.cpu(i).assignment.is_home_of(SpuId::user(1)))
            .unwrap();
        s.cpu_mut(home1).running = Some(Pid(0));
        s.sync_cpu(home1);
        // user1's home CPU is busy; Quota must not hand out the other CPU.
        assert_eq!(s.find_idle_for(SpuId::user(1)), None);
    }

    #[test]
    fn decay_shrinks_p_cpu() {
        let spus = SpuSet::equal_users(1);
        let s = Scheduler::new(Scheme::PIso, 1, &spus);
        let mut procs = table_with(1, |_| SpuId::user(0));
        procs.get_mut(Pid(0)).p_cpu = 100.0;
        s.decay_priorities(&mut procs);
        let v = procs.get(Pid(0)).p_cpu;
        assert!(v < 100.0 && v > 99.0, "{v}");
    }

    #[test]
    fn offline_cpu_never_picks_or_hosts() {
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::Smp, 2, &spus);
        let mut procs = table_with(1, |_| SpuId::user(0));
        s.enqueue(&mut procs, Pid(0));
        s.set_online(0, false);
        assert_eq!(s.online_count(), 1);
        assert!(s.pick(&mut procs, 0).is_none(), "offline CPU must not pick");
        assert_eq!(s.find_idle_for(SpuId::user(0)), Some(1));
        s.set_online(0, true);
        assert!(s.pick(&mut procs, 0).is_some());
    }

    #[test]
    fn rebalance_rehomes_surviving_cpus() {
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::Quota, 2, &spus);
        let mut procs = table_with(2, SpuId::user);
        s.set_online(0, false);
        s.rebalance(&mut procs);
        // The lone surviving CPU must now be home to both SPUs.
        assert!(s.cpu(1).assignment.is_home_of(SpuId::user(0)));
        assert!(s.cpu(1).assignment.is_home_of(SpuId::user(1)));
        // Coming back online and rebalancing restores dedicated homes.
        s.set_online(0, true);
        s.rebalance(&mut procs);
        let homes_0 = s.cpu(0).assignment.is_home_of(SpuId::user(0))
            || s.cpu(1).assignment.is_home_of(SpuId::user(0));
        assert!(homes_0);
    }

    #[test]
    fn rebalance_recomputes_loan_flags() {
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::PIso, 2, &spus);
        let mut procs = table_with(1, |_| SpuId::user(1));
        let cpu_of_user0 = (0..2)
            .find(|&i| s.cpu(i).assignment.is_home_of(SpuId::user(0)))
            .unwrap();
        s.enqueue(&mut procs, Pid(0));
        let (pid, loaned) = s.pick(&mut procs, cpu_of_user0).unwrap();
        assert!(loaned);
        s.cpu_mut(cpu_of_user0).running = Some(pid);
        s.cpu_mut(cpu_of_user0).loaned = true;
        s.sync_cpu(cpu_of_user0);
        // The other CPU dies; the survivor becomes home to both SPUs, so
        // the borrowed process is no longer a loan.
        let other = 1 - cpu_of_user0;
        s.set_online(other, false);
        s.rebalance(&mut procs);
        assert!(!s.cpu(cpu_of_user0).loaned);
    }

    #[test]
    fn dequeue_removes_only_queued() {
        let spus = SpuSet::equal_users(1);
        let mut s = Scheduler::new(Scheme::PIso, 1, &spus);
        let mut procs = table_with(2, |_| SpuId::user(0));
        s.enqueue(&mut procs, Pid(0));
        assert!(s.dequeue(&mut procs, Pid(0)));
        assert!(!s.dequeue(&mut procs, Pid(0)));
        assert!(!s.dequeue(&mut procs, Pid(1)));
        assert_eq!(s.ready_count(), 0);
    }

    #[test]
    fn requeue_after_preempt_goes_behind_equal_band() {
        // A preempted process re-enters its band *behind* peers that
        // kept waiting: requeue re-stamps the FIFO sequence.
        let spus = SpuSet::equal_users(1);
        let mut s = Scheduler::new(Scheme::PIso, 1, &spus);
        let mut procs = table_with(3, |_| SpuId::user(0));
        s.enqueue(&mut procs, Pid(0));
        s.enqueue(&mut procs, Pid(1));
        s.enqueue(&mut procs, Pid(2));
        // Pid(0) runs, then is preempted and requeued.
        assert_eq!(s.pick(&mut procs, 0).unwrap().0, Pid(0));
        s.enqueue(&mut procs, Pid(0));
        assert_eq!(s.pick(&mut procs, 0).unwrap().0, Pid(1));
        assert_eq!(s.pick(&mut procs, 0).unwrap().0, Pid(2));
        assert_eq!(s.pick(&mut procs, 0).unwrap().0, Pid(0));
        assert!(s.pick(&mut procs, 0).is_none());
    }

    #[test]
    fn queue_membership_survives_swap_removal() {
        // Dequeueing from the middle swap-fills the hole; the moved
        // process's slot record must stay accurate so its own O(1)
        // dequeue still lands on the right entry.
        let spus = SpuSet::equal_users(1);
        let mut s = Scheduler::new(Scheme::PIso, 1, &spus);
        let mut procs = table_with(4, |_| SpuId::user(0));
        for i in 0..4 {
            s.enqueue(&mut procs, Pid(i));
        }
        assert!(s.dequeue(&mut procs, Pid(1)));
        assert!(s.dequeue(&mut procs, Pid(3))); // swapped into slot 1
        assert!(s.dequeue(&mut procs, Pid(0)));
        assert!(s.dequeue(&mut procs, Pid(2)));
        assert_eq!(s.ready_count(), 0);
        assert!(!s.has_ready(SpuId::user(0)));
    }

    #[test]
    fn rebalance_preserves_fifo_order_across_queues() {
        // Queued work re-placed after a partition change keeps its
        // arrival order (stamps are not refreshed by rebalance).
        let spus = SpuSet::equal_users(2);
        let mut s = Scheduler::new(Scheme::PIso, 2, &spus);
        let mut procs = table_with(3, |_| SpuId::user(0));
        s.enqueue(&mut procs, Pid(1));
        s.enqueue(&mut procs, Pid(0));
        s.enqueue(&mut procs, Pid(2));
        s.set_online(0, false);
        s.rebalance(&mut procs);
        assert_eq!(s.pick(&mut procs, 1).unwrap().0, Pid(1));
        assert_eq!(s.pick(&mut procs, 1).unwrap().0, Pid(0));
        assert_eq!(s.pick(&mut procs, 1).unwrap().0, Pid(2));
    }

    #[test]
    #[should_panic(expected = "pid mismatch")]
    fn wrong_pid_insert_panics() {
        let prog = Program::builder("t").build();
        let mut t = ProcTable::new();
        t.insert(Process::new(
            Pid(5),
            SpuId::user(0),
            None,
            prog,
            None,
            SimTime::ZERO,
        ));
    }
}
