//! Resource policy and recovery: the kernel's [`ResourceManager`]
//! registry (CPU time, memory, disk bandwidth as three instances of the
//! one `spu-core` contract), the generic sampler and auditor passes
//! that iterate it, and fault injection with its recovery policies.

use std::sync::Arc;

use event_sim::{FaultKind, SimDuration, SimTime};
use spu_core::{CpuPartition, LevelSnapshot, ResourceKind, ResourceManager, SpuId};

use crate::kernel::Kernel;
use crate::obsv::interference::SloSample;
use crate::obsv::ResourceSample;
use crate::process::{MicroOp, ProcState};
use crate::program::Program;
use crate::trace::TraceEvent;

/// Fault-injection and recovery tallies published as `fault.*` counters.
#[derive(Debug, Default)]
pub(crate) struct FaultCounters {
    pub(crate) injected: u64,
    pub(crate) skipped: u64,
    pub(crate) crashes: u64,
    pub(crate) forkbombs: u64,
    pub(crate) cpu_offline: u64,
    pub(crate) cpu_online: u64,
    pub(crate) disk_errors: u64,
    pub(crate) io_retries: u64,
    pub(crate) io_failures: u64,
    pub(crate) retry_storms: u64,
}

/// The kernel's managed resources, one [`ResourceManager`] each, in the
/// fixed registry order the sample series are laid out in.
pub(crate) fn kernel_managers() -> Vec<Box<dyn ResourceManager<Ctx = Kernel> + Send + Sync>> {
    vec![
        Box::new(CpuTimeManager),
        Box::new(MemLedgerManager),
        Box::new(DiskBwManager),
    ]
}

/// CPU time through the §3.1 hybrid partition: entitlement from the
/// partition; `allowed` is the entitlement plus any CPUs currently
/// borrowed (loans).
#[derive(Debug, Default)]
pub(crate) struct CpuTimeManager;

impl ResourceManager for CpuTimeManager {
    type Ctx = Kernel;

    fn kind(&self) -> ResourceKind {
        ResourceKind::CpuTime
    }

    fn sample(&mut self, k: &mut Kernel, users: usize, _now: SimTime) -> Vec<LevelSnapshot> {
        // CPU occupancy: how many CPUs each user SPU is running on, and
        // how many of those are loans from other SPUs' home CPUs.
        let mut used = vec![0u64; users];
        let mut loaned = vec![0u64; users];
        for i in 0..k.sched.cpu_count() {
            let c = k.sched.cpu(i);
            if let Some(pid) = c.running {
                if let Some(u) = k.procs.get(pid).spu.user_index() {
                    used[u] += 1;
                    if c.loaned {
                        loaned[u] += 1;
                    }
                }
            }
        }
        (0..users)
            .map(|u| LevelSnapshot {
                entitled: k.cpu_entitled[u],
                allowed: k.cpu_entitled[u] + loaned[u] as f64,
                used: used[u] as f64,
            })
            .collect()
    }
}

/// Physical memory straight from the VM ledger (§3.2): under PIso the
/// policy raises `allowed` above `entitled` while lending and drops it
/// back at the next evaluation. Owns the conservation audit because the
/// memory ledger is the one the [`LedgerAuditor`](spu_core::LedgerAuditor)
/// watches.
#[derive(Debug, Default)]
pub(crate) struct MemLedgerManager;

impl ResourceManager for MemLedgerManager {
    type Ctx = Kernel;

    fn kind(&self) -> ResourceKind {
        ResourceKind::Memory
    }

    fn sample(&mut self, k: &mut Kernel, users: usize, _now: SimTime) -> Vec<LevelSnapshot> {
        (0..users)
            .map(|u| {
                let lv = k.vm.levels(SpuId::user(u as u32));
                LevelSnapshot {
                    entitled: lv.entitled as f64,
                    allowed: lv.allowed as f64,
                    used: lv.used as f64,
                }
            })
            .collect()
    }

    fn audit(&mut self, k: &mut Kernel, pressure: bool, now: SimTime) {
        k.cfg
            .scheme
            .sharing()
            .audit(&mut k.auditor, k.vm.ledger(), &k.spus, pressure, now);
    }
}

/// Disk bandwidth as decayed sector counts per §3.3. The fair share of
/// the current decayed total is the entitlement; `allowed` tops out at
/// actual usage because the §3.3 scheduler throttles rather than
/// reserves. The decay is step-invariant, so sampling never perturbs
/// scheduling.
#[derive(Debug, Default)]
pub(crate) struct DiskBwManager;

impl ResourceManager for DiskBwManager {
    type Ctx = Kernel;

    fn kind(&self) -> ResourceKind {
        ResourceKind::DiskBandwidth
    }

    fn sample(&mut self, k: &mut Kernel, users: usize, now: SimTime) -> Vec<LevelSnapshot> {
        let used: Vec<f64> = (0..users)
            .map(|u| {
                let spu = SpuId::user(u as u32);
                k.disks
                    .iter_mut()
                    .map(|d| d.sampled_bandwidth(spu, now))
                    .sum()
            })
            .collect();
        let total: f64 = used.iter().sum();
        let weight_sum: f64 = (0..users)
            .map(|u| k.spus.disk_weight(SpuId::user(u as u32)) as f64)
            .sum();
        (0..users)
            .map(|u| {
                let entitled = if weight_sum > 0.0 {
                    total * k.spus.disk_weight(SpuId::user(u as u32)) as f64 / weight_sum
                } else {
                    0.0
                };
                LevelSnapshot {
                    entitled,
                    allowed: entitled.max(used[u]),
                    used: used[u],
                }
            })
            .collect()
    }
}

impl Kernel {
    /// Runs every manager's audit hook over the kernel's books.
    /// Violations surface as the `audit.violations` counter, never as a
    /// panic.
    pub(crate) fn audit_ledger(&mut self) {
        // Policy-pass boundary: fold per-CPU shard deltas so the
        // auditor's conservation check runs against exact global books.
        self.vm.fold_ledger();
        let denials: u64 = self
            .spus
            .all_ids()
            .map(|id| self.vm.stats(id).denials)
            .sum();
        let pressure = denials > self.last_denials;
        self.last_denials = denials;
        let now = self.now;
        let mut managers = std::mem::take(&mut self.managers);
        for m in &mut managers {
            m.audit(self, pressure, now);
        }
        self.managers = managers;
    }

    /// Records one `(entitled, allowed, used)` sample per user SPU and
    /// managed resource, iterating the manager registry. See
    /// [`enable_sampling`](Self::enable_sampling).
    pub(crate) fn on_sample(&mut self) {
        let now = self.now;
        let users = self.spus.user_count();
        let mut managers = std::mem::take(&mut self.managers);
        let width = managers.len();
        for (slot, m) in managers.iter_mut().enumerate() {
            for (u, s) in m.sample(self, users, now).into_iter().enumerate() {
                self.series[u * width + slot].push(ResourceSample {
                    at: now,
                    entitled: s.entitled,
                    allowed: s.allowed,
                    used: s.used,
                });
            }
        }
        self.managers = managers;
        // The SLO tracker piggybacks on the same cadence: cumulative
        // per-SPU completion/violation counts at every sampling instant.
        if let Some(target) = self.slo_target {
            for (idx, spu) in self.spus.all_ids().enumerate() {
                if idx >= self.slo_samples.len() {
                    break;
                }
                let mut completed = 0u64;
                let mut violated = 0u64;
                for j in self
                    .jobs
                    .iter()
                    .filter(|j| j.spu == spu && j.started <= now && !j.shed)
                {
                    match j.finished {
                        Some(f) => {
                            completed += 1;
                            if f.saturating_since(j.started) > target {
                                violated += 1;
                            }
                        }
                        // Still running past the target: already violated.
                        None if now.saturating_since(j.started) > target => violated += 1,
                        None => {}
                    }
                }
                self.slo_samples[idx].push(SloSample {
                    at: now,
                    completed,
                    violated,
                });
            }
        }
    }

    // ----- fault injection & recovery --------------------------------------

    /// Applies one injected fault. Malformed targets (out-of-range disk
    /// or CPU, the last online CPU, an SPU with nothing to crash) are
    /// counted as skipped rather than applied, so a random plan can
    /// never wedge the machine.
    pub(crate) fn on_fault(&mut self, kind: FaultKind) {
        self.fault_counts.injected += 1;
        match kind {
            FaultKind::DiskTransientErrors { disk, count } => {
                if disk >= self.disks.len() || count == 0 {
                    self.fault_counts.skipped += 1;
                    return;
                }
                self.trace.push(TraceEvent::FaultInjected {
                    at: self.now,
                    label: "disk-errors",
                });
                self.disks[disk].inject_failures(count);
            }
            FaultKind::DiskDegrade { disk, factor } => {
                if disk >= self.disks.len() || !factor.is_finite() || factor < 1.0 {
                    self.fault_counts.skipped += 1;
                    return;
                }
                self.trace.push(TraceEvent::FaultInjected {
                    at: self.now,
                    label: "disk-degrade",
                });
                self.disks[disk].set_degraded(Some(factor));
                self.set_disk_shares(disk, factor);
            }
            FaultKind::DiskRepair { disk } => {
                if disk >= self.disks.len() {
                    self.fault_counts.skipped += 1;
                    return;
                }
                self.trace.push(TraceEvent::FaultInjected {
                    at: self.now,
                    label: "disk-repair",
                });
                self.disks[disk].set_degraded(None);
                self.set_disk_shares(disk, 1.0);
            }
            FaultKind::CpuOffline { cpu } => {
                if cpu >= self.sched.cpu_count()
                    || !self.sched.cpu(cpu).online
                    || self.sched.online_count() <= 1
                {
                    self.fault_counts.skipped += 1;
                    return;
                }
                self.trace.push(TraceEvent::FaultInjected {
                    at: self.now,
                    label: "cpu-offline",
                });
                self.fault_counts.cpu_offline += 1;
                if self.sched.cpu(cpu).running.is_some() {
                    self.preempt(cpu);
                }
                self.sched.set_online(cpu, false);
                self.rebalance_cpus();
            }
            FaultKind::CpuOnline { cpu } => {
                if cpu >= self.sched.cpu_count() || self.sched.cpu(cpu).online {
                    self.fault_counts.skipped += 1;
                    return;
                }
                self.trace.push(TraceEvent::FaultInjected {
                    at: self.now,
                    label: "cpu-online",
                });
                self.fault_counts.cpu_online += 1;
                self.sched.set_online(cpu, true);
                self.rebalance_cpus();
            }
            FaultKind::ProcessCrash { user_spu } => self.crash_in_spu(user_spu),
            FaultKind::ForkBomb {
                user_spu,
                width,
                depth,
                burn,
                pages,
            } => {
                if user_spu as usize >= self.spus.user_count() {
                    self.fault_counts.skipped += 1;
                    return;
                }
                self.trace.push(TraceEvent::FaultInjected {
                    at: self.now,
                    label: "fork-bomb",
                });
                self.fault_counts.forkbombs += 1;
                self.spawn_fork_bomb(user_spu, width, depth, burn, pages);
            }
            FaultKind::RetryStorm { user_spu, burst } => {
                if user_spu as usize >= self.spus.user_count() || burst == 0 {
                    self.fault_counts.skipped += 1;
                    return;
                }
                let spu = SpuId::user(user_spu);
                // Impatient clients re-submit the SPU's outstanding
                // work: duplicate the programs of its live root
                // processes, untracked (the storm is load, not jobs).
                let dups: Vec<Arc<Program>> = self
                    .procs
                    .iter()
                    .filter(|p| {
                        p.spu == spu && p.parent.is_none() && !matches!(p.state, ProcState::Done)
                    })
                    .map(|p| p.program_arc())
                    .take(burst.clamp(1, 16) as usize)
                    .collect();
                if dups.is_empty() {
                    self.fault_counts.skipped += 1;
                    return;
                }
                self.trace.push(TraceEvent::FaultInjected {
                    at: self.now,
                    label: "retry-storm",
                });
                self.fault_counts.retry_storms += 1;
                let now = self.now;
                for prog in dups {
                    self.spawn_at(spu, prog, None, now);
                }
            }
        }
    }

    /// Graceful degradation of disk bandwidth (§3.3 under failure): a
    /// device running `factor`× slower grants every SPU proportionally
    /// less `allowed` share; repair restores the configured weights.
    pub(crate) fn set_disk_shares(&mut self, disk: usize, factor: f64) {
        let shares: Vec<(SpuId, f64)> = self
            .spus
            .user_ids()
            .map(|id| (id, self.spus.disk_weight(id) as f64 / factor))
            .collect();
        for (id, w) in shares {
            self.disks[disk].set_share(id, w);
        }
    }

    /// Re-derives every SPU's CPU entitlement from the surviving online
    /// CPUs, revokes loans the new partition disallows, and refills idle
    /// CPUs. Audits that the re-derived entitlements still fit the
    /// machine (conservation under reconfiguration).
    pub(crate) fn rebalance_cpus(&mut self) {
        self.sched.rebalance(&mut self.procs);
        let online = self.sched.online_count();
        if online == 0 {
            return;
        }
        let partition = CpuPartition::compute(online, &self.spus);
        let total: u64 = self
            .spus
            .user_ids()
            .map(|id| partition.milli_cpus(id))
            .sum();
        if total > online as u64 * 1000 {
            self.cpu_audit_violations += 1;
        }
        if self.sample_interval.is_some() {
            self.cpu_entitled = self
                .spus
                .user_ids()
                .map(|id| partition.milli_cpus(id) as f64 / 1000.0)
                .collect();
        }
        let mut cpu = 0;
        while let Some(c) = self.sched.next_loaned_cpu(cpu) {
            if self.sched.needs_revocation(&self.procs, c) {
                self.preempt(c);
                self.dispatch(c);
            }
            cpu = c + 1;
        }
        let mut cpu = 0;
        while let Some(c) = self.sched.next_idle_cpu(cpu) {
            if self.sched.ready_count() == 0 {
                break;
            }
            self.dispatch(c);
            cpu = c + 1;
        }
    }

    /// Crashes the lowest-pid ready or running process of the given user
    /// SPU: its locks are released (waiters woken), its frames are
    /// freed, and its job is left unfinished. Blocked processes are not
    /// chosen — their wakeups are owned by other subsystems' queues.
    pub(crate) fn crash_in_spu(&mut self, user_spu: u32) {
        if user_spu as usize >= self.spus.user_count() {
            self.fault_counts.skipped += 1;
            return;
        }
        let spu = SpuId::user(user_spu);
        let victim = self
            .procs
            .iter()
            .filter(|p| p.spu == spu && matches!(p.state, ProcState::Ready | ProcState::Running(_)))
            .map(|p| (p.pid, p.state))
            .min_by_key(|&(pid, _)| pid);
        let Some((pid, state)) = victim else {
            self.fault_counts.skipped += 1;
            return;
        };
        self.trace.push(TraceEvent::FaultInjected {
            at: self.now,
            label: "process-crash",
        });
        self.fault_counts.crashes += 1;
        match state {
            ProcState::Running(cpu) => {
                if let Err(e) = self.deschedule(cpu) {
                    self.report_error(e);
                }
            }
            ProcState::Ready => {
                self.sched.dequeue(&mut self.procs, pid);
            }
            _ => {}
        }
        self.wake_pending.remove(&pid);
        if let Some(attr) = &mut self.attribution {
            // Close the dead process's holds and drop its queued waits;
            // grants below are blamed on the crashed SPU, whose cleanup
            // the waiters actually sat behind.
            attr.forget(pid, spu, self.now);
        }
        for w in self.locks.release_all(pid) {
            if let Some(attr) = self.attribution.as_mut() {
                if let Some(&MicroOp::LockAcquire { lock, .. }) = self.procs.get(w).micro_front() {
                    let waiter_spu = self.procs.get(w).spu;
                    attr.lock_granted(w, waiter_spu, lock, spu, self.now);
                    self.trace.push(TraceEvent::LockGrant {
                        at: self.now,
                        pid: w,
                        lock,
                        holder: spu,
                    });
                }
            }
            let wp = self.procs.get_mut(w);
            if matches!(wp.micro_front(), Some(MicroOp::LockAcquire { .. })) {
                wp.pop_micro();
            }
            self.make_ready(w);
        }
        self.exit_process(pid, true);
        let mut cpu = 0;
        while let Some(c) = self.sched.next_idle_cpu(cpu) {
            if self.sched.ready_count() == 0 {
                break;
            }
            self.dispatch(c);
            cpu = c + 1;
        }
    }

    /// Spawns the antisocial fork-bomb workload in `user_spu`: a tree of
    /// processes `width` wide and `depth` deep, each touching `pages`
    /// pages and burning `burn` of CPU. Width and depth are clamped so
    /// an adversarial plan cannot explode the process table.
    pub(crate) fn spawn_fork_bomb(
        &mut self,
        user_spu: u32,
        width: u32,
        depth: u32,
        burn: SimDuration,
        pages: u32,
    ) {
        fn bomb(width: u32, depth: u32, burn: SimDuration, pages: u32) -> Arc<Program> {
            let mut b = Program::builder("bomb");
            if pages > 0 {
                b = b.alloc(pages);
            }
            b = b.compute(burn, pages);
            if depth > 0 {
                let child = bomb(width, depth - 1, burn, pages);
                for _ in 0..width {
                    b = b.fork(child.clone());
                }
                b = b.wait_children();
            }
            b.build()
        }
        let prog = bomb(width.clamp(1, 6), depth.min(4), burn, pages.min(1 << 14));
        let label = format!("bomb-u{user_spu}");
        self.spawn_at(SpuId::user(user_spu), prog, Some(&label), self.now);
    }
}
