//! Small statistics accumulators used by the kernel metrics and the
//! experiment harness.
//!
//! * [`OnlineStats`] — count/mean/variance/min/max in O(1) space (Welford).
//! * [`Histogram`] — fixed-width bucket histogram with percentile queries.
//! * [`LogHistogram`] — log-bucketed latency histogram with deterministic
//!   bucket boundaries, merge, and percentile queries.
//! * [`TimeWeighted`] — time-weighted average of a piecewise-constant value
//!   (e.g. queue depth or pages in use over simulated time).

use crate::time::{SimDuration, SimTime};

/// Streaming count/mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use event_sim::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.add(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a duration observation in seconds.
    pub fn add_duration(&mut self, d: SimDuration) {
        self.add(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Population variance; zero when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width bucket histogram over `[lo, hi)` with overflow buckets,
/// supporting approximate percentile queries.
///
/// # Examples
///
/// ```
/// use event_sim::Histogram;
/// let mut h = Histogram::new(0.0, 100.0, 10);
/// for x in 0..100 {
///     h.add(x as f64);
/// }
/// let p50 = h.percentile(50.0).unwrap();
/// assert!((40.0..=60.0).contains(&p50));
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `n` equal-width buckets.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0, "need at least one bucket");
        assert!(hi > lo, "empty range");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total number of observations including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate `p`-th percentile (`0 < p <= 100`), linearly interpolated
    /// within the containing bucket. Returns `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let target = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if seen + c >= target {
                let into = (target - seen) as f64 / c.max(1) as f64;
                return Some(self.lo + width * (i as f64 + into));
            }
            seen += c;
        }
        Some(self.hi)
    }
}

/// Log-bucketed histogram for latency-like quantities that span many
/// orders of magnitude.
///
/// Bucket `i` covers `[min · growth^i, min · growth^(i+1))`; boundaries
/// are precomputed once by repeated multiplication, so two histograms
/// built with the same parameters have bit-identical boundaries and can
/// be [merged](LogHistogram::merge). Values below `min` (including the
/// very common zero latency) land in an underflow bucket covering
/// `[0, min)`; values at or past the last boundary land in overflow.
///
/// # Examples
///
/// ```
/// use event_sim::LogHistogram;
/// let mut h = LogHistogram::latency();
/// for us in [5u64, 50, 500, 5_000] {
///     h.add(us as f64 * 1e-6); // seconds
/// }
/// assert_eq!(h.count(), 4);
/// let p50 = h.percentile(50.0).unwrap();
/// assert!(p50 > 5e-6 && p50 < 5e-4);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    /// `bounds[i]` is the inclusive lower edge of bucket `i`; one extra
    /// entry holds the exclusive upper edge of the last bucket.
    bounds: Vec<f64>,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
    max: f64,
}

impl LogHistogram {
    /// Creates a histogram whose first bucket starts at `min` and whose
    /// bucket widths grow geometrically by `growth`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `min <= 0`, or `growth <= 1`.
    pub fn new(min: f64, growth: f64, n: usize) -> Self {
        assert!(n > 0, "need at least one bucket");
        assert!(min > 0.0, "first boundary must be positive");
        assert!(growth > 1.0, "growth factor must exceed 1");
        let mut bounds = Vec::with_capacity(n + 1);
        let mut edge = min;
        for _ in 0..=n {
            bounds.push(edge);
            edge *= growth;
        }
        LogHistogram {
            bounds,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// The standard latency histogram used across the kernel: 1 µs first
    /// bucket, doubling per bucket, 36 buckets (covers past 19 simulated
    /// hours before overflow).
    pub fn latency() -> Self {
        LogHistogram::new(1e-6, 2.0, 36)
    }

    /// Adds one observation (negative values count as underflow).
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        self.sum += x.max(0.0);
        self.max = self.max.max(x);
        if x < self.bounds[0] {
            self.underflow += 1;
        } else if x >= self.bounds[self.buckets.len()] {
            self.overflow += 1;
        } else {
            // First edge strictly above x, minus one, is x's bucket.
            let idx = self.bounds.partition_point(|&b| b <= x) - 1;
            self.buckets[idx] += 1;
        }
    }

    /// Adds a duration observation in seconds.
    pub fn add_duration(&mut self, d: SimDuration) {
        self.add(d.as_secs_f64());
    }

    /// Total number of observations including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all (non-negative) observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest observation seen (exact, not bucketed); zero when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another histogram with identical boundaries into this one.
    ///
    /// # Panics
    ///
    /// Panics if the boundary sets differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.bounds, other.bounds, "merging mismatched histograms");
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Approximate `p`-th percentile (`0 < p <= 100`), linearly
    /// interpolated within the containing bucket. Underflow reads as 0,
    /// overflow as the last boundary. Returns `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let target = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(0.0);
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            if seen + c >= target {
                let into = (target - seen) as f64 / c.max(1) as f64;
                let lo = self.bounds[i];
                let hi = self.bounds[i + 1];
                return Some(lo + (hi - lo) * into);
            }
            seen += c;
        }
        Some(self.bounds[self.buckets.len()])
    }

    /// Occupied buckets as `(lower_edge, upper_edge, count)` triples, in
    /// ascending order; underflow appears as `(0, min, n)`. Useful for
    /// compact export.
    pub fn nonzero_buckets(&self) -> Vec<(f64, f64, u64)> {
        let mut out = Vec::new();
        if self.underflow > 0 {
            out.push((0.0, self.bounds[0], self.underflow));
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                out.push((self.bounds[i], self.bounds[i + 1], c));
            }
        }
        if self.overflow > 0 {
            let last = self.bounds[self.buckets.len()];
            out.push((last, f64::INFINITY, self.overflow));
        }
        out
    }
}

/// Time-weighted average of a piecewise-constant quantity.
///
/// Call [`TimeWeighted::set`] whenever the value changes; the accumulator
/// integrates value × elapsed-time between updates.
///
/// # Examples
///
/// ```
/// use event_sim::{SimTime, TimeWeighted};
/// let mut w = TimeWeighted::new(SimTime::ZERO, 0.0);
/// w.set(SimTime::from_secs(1), 10.0); // value was 0 for 1s
/// w.set(SimTime::from_secs(3), 0.0);  // value was 10 for 2s
/// assert!((w.average(SimTime::from_secs(4)) - 5.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    last_time: SimTime,
    value: f64,
    integral: f64,
    start: SimTime,
    peak: f64,
}

impl TimeWeighted {
    /// Creates an accumulator with an initial value at `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_time: start,
            value: initial,
            integral: 0.0,
            start,
            peak: initial,
        }
    }

    /// Records that the quantity changed to `value` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `now` precedes the previous update.
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(now >= self.last_time, "time went backwards");
        self.integral += self.value * now.saturating_since(self.last_time).as_secs_f64();
        self.last_time = now;
        self.value = value;
        self.peak = self.peak.max(value);
    }

    /// Adds `delta` to the current value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current (most recently set) value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Largest value ever set.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// The time-weighted average over `[start, now]`; zero for an empty
    /// interval.
    pub fn average(&self, now: SimTime) -> f64 {
        let total = now.saturating_since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.value;
        }
        let tail = self.value * now.saturating_since(self.last_time).as_secs_f64();
        (self.integral + tail) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_merge_matches_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 37 % 13) as f64).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..40] {
            a.add(x);
        }
        for &x in &xs[40..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.add(1.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(0.0, 1000.0, 100);
        for i in 0..1000 {
            h.add(i as f64);
        }
        let p50 = h.percentile(50.0).unwrap();
        assert!((p50 - 500.0).abs() < 20.0, "{p50}");
        let p99 = h.percentile(99.0).unwrap();
        assert!((p99 - 990.0).abs() < 20.0, "{p99}");
    }

    #[test]
    fn histogram_overflow_and_underflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(-5.0);
        h.add(100.0);
        h.add(5.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(1.0), Some(0.0)); // underflow clamps to lo
        assert_eq!(h.percentile(100.0), Some(10.0)); // overflow clamps to hi
    }

    #[test]
    fn histogram_empty_returns_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.percentile(50.0), None);
    }

    #[test]
    fn log_histogram_buckets_and_percentiles() {
        let mut h = LogHistogram::new(1.0, 2.0, 8);
        // 1, 2, 4, ..., 128: one observation per bucket.
        for i in 0..8 {
            h.add((1u64 << i) as f64);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.nonzero_buckets().len(), 8);
        let p50 = h.percentile(50.0).unwrap();
        assert!((8.0..=16.0).contains(&p50), "{p50}");
        let p100 = h.percentile(100.0).unwrap();
        assert!(p100 >= 128.0, "{p100}");
        assert_eq!(h.max(), 128.0);
        assert!((h.mean() - 255.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_underflow_and_overflow() {
        let mut h = LogHistogram::new(1.0, 10.0, 2); // buckets [1,10) [10,100)
        h.add(0.0);
        h.add(0.5);
        h.add(5.0);
        h.add(1e6);
        assert_eq!(h.count(), 4);
        assert_eq!(h.percentile(25.0), Some(0.0));
        assert_eq!(h.percentile(100.0), Some(100.0));
        let nz = h.nonzero_buckets();
        assert_eq!(nz[0], (0.0, 1.0, 2));
        assert_eq!(nz.last().unwrap().2, 1);
        assert!(nz.last().unwrap().1.is_infinite());
    }

    #[test]
    fn log_histogram_merge_matches_single_stream() {
        let xs: Vec<f64> = (1..200).map(|i| (i * i) as f64 * 1e-6).collect();
        let mut whole = LogHistogram::latency();
        let mut a = LogHistogram::latency();
        let mut b = LogHistogram::latency();
        for (i, &x) in xs.iter().enumerate() {
            whole.add(x);
            if i % 2 == 0 {
                a.add(x);
            } else {
                b.add(x);
            }
        }
        a.merge(&b);
        // Bucket counts match exactly; the sum only up to float
        // re-association (merge adds two partial sums).
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.nonzero_buckets(), whole.nonzero_buckets());
        assert!((a.sum() - whole.sum()).abs() < 1e-9 * whole.sum().abs());
        assert_eq!(a.percentile(95.0), whole.percentile(95.0));
    }

    #[test]
    fn log_histogram_boundaries_are_reproducible() {
        let a = LogHistogram::latency();
        let b = LogHistogram::latency();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn log_histogram_merge_rejects_mismatched_bounds() {
        let mut a = LogHistogram::new(1.0, 2.0, 4);
        let b = LogHistogram::new(1.0, 2.0, 5);
        a.merge(&b);
    }

    #[test]
    fn log_histogram_empty_percentile_is_none() {
        assert_eq!(LogHistogram::latency().percentile(50.0), None);
    }

    #[test]
    fn time_weighted_average() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 2.0);
        w.set(SimTime::from_secs(2), 6.0); // 2.0 for 2s
        w.set(SimTime::from_secs(3), 0.0); // 6.0 for 1s
                                           // total integral 2*2 + 6*1 = 10 over 5s -> 2.0
        assert!((w.average(SimTime::from_secs(5)) - 2.0).abs() < 1e-12);
        assert_eq!(w.peak(), 6.0);
        assert_eq!(w.current(), 0.0);
    }

    #[test]
    fn time_weighted_add_tracks_deltas() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 0.0);
        w.add(SimTime::from_secs(1), 3.0);
        w.add(SimTime::from_secs(2), -1.0);
        assert_eq!(w.current(), 2.0);
        assert_eq!(w.peak(), 3.0);
    }
}
