//! Stable content fingerprinting for cache keys.
//!
//! The sweep engine caches cell outcomes under a *content address*: a
//! 64-bit FNV-1a hash of everything that determines a simulation's
//! result — the machine configuration, the spawned program set, seeds
//! and scales. [`std::hash::Hash`] is unsuitable for this because its
//! output is not guaranteed stable across Rust releases or processes;
//! [`Fnv64`] is a fixed algorithm whose digests are valid forever, so
//! cache entries written by one build are safely readable by the next
//! unless the hashed content itself changed.

/// A 64-bit FNV-1a hasher with a stable, process-independent digest.
///
/// # Examples
///
/// ```
/// use event_sim::fingerprint::Fnv64;
/// let mut h = Fnv64::new();
/// h.write_bytes(b"hello");
/// let a = h.finish();
/// let mut h2 = Fnv64::new();
/// h2.write_bytes(b"hello");
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Clone, Debug)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` (widened to `u64` so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds an `f64` by bit pattern (exact; distinguishes `-0.0`, and
    /// hashes every NaN payload as written).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a bool.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[v as u8]);
    }

    /// Feeds a length-prefixed string (so `"ab" + "c"` differs from
    /// `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The digest so far (the hasher remains usable).
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Content that can feed a [`Fnv64`] fingerprint.
///
/// Implementations must be *stable*: the same logical value always
/// produces the same byte stream, across processes and builds. Every
/// implementation tags itself with a distinct leading byte sequence so
/// adjacent fields of different types cannot collide by concatenation.
pub trait Fingerprint {
    /// Feeds this value into `h`.
    fn fingerprint(&self, h: &mut Fnv64);

    /// Convenience: the digest of this value alone.
    fn fingerprint_digest(&self) -> u64 {
        let mut h = Fnv64::new();
        self.fingerprint(&mut h);
        h.finish()
    }
}

impl Fingerprint for crate::SimTime {
    fn fingerprint(&self, h: &mut Fnv64) {
        h.write_u64(self.as_nanos());
    }
}

impl Fingerprint for crate::SimDuration {
    fn fingerprint(&self, h: &mut Fnv64) {
        h.write_u64(self.as_nanos());
    }
}

impl Fingerprint for crate::FaultKind {
    fn fingerprint(&self, h: &mut Fnv64) {
        use crate::FaultKind::*;
        match *self {
            DiskTransientErrors { disk, count } => {
                h.write_u32(1);
                h.write_usize(disk);
                h.write_u32(count);
            }
            DiskDegrade { disk, factor } => {
                h.write_u32(2);
                h.write_usize(disk);
                h.write_f64(factor);
            }
            DiskRepair { disk } => {
                h.write_u32(3);
                h.write_usize(disk);
            }
            CpuOffline { cpu } => {
                h.write_u32(4);
                h.write_usize(cpu);
            }
            CpuOnline { cpu } => {
                h.write_u32(5);
                h.write_usize(cpu);
            }
            ProcessCrash { user_spu } => {
                h.write_u32(6);
                h.write_u32(user_spu);
            }
            ForkBomb {
                user_spu,
                width,
                depth,
                burn,
                pages,
            } => {
                h.write_u32(7);
                h.write_u32(user_spu);
                h.write_u32(width);
                h.write_u32(depth);
                burn.fingerprint(h);
                h.write_u32(pages);
            }
            RetryStorm { user_spu, burst } => {
                h.write_u32(8);
                h.write_u32(user_spu);
                h.write_u32(burst);
            }
        }
    }
}

impl Fingerprint for crate::FaultPlan {
    fn fingerprint(&self, h: &mut Fnv64) {
        h.write_usize(self.events().len());
        for e in self.events() {
            e.at.fingerprint(h);
            e.kind.fingerprint(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultKind, FaultPlan, SimTime};

    #[test]
    fn digest_is_stable_and_sensitive() {
        let plan = FaultPlan::new().at(SimTime::from_secs(1), FaultKind::CpuOffline { cpu: 2 });
        let a = plan.fingerprint_digest();
        let b = plan
            .clone()
            .at(SimTime::from_secs(2), FaultKind::CpuOnline { cpu: 2 })
            .fingerprint_digest();
        assert_eq!(a, plan.fingerprint_digest());
        assert_ne!(a, b);
        // Known-answer check pins the algorithm across releases.
        let mut h = Fnv64::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn string_prefixing_avoids_concatenation_collisions() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
