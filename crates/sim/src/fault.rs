//! Deterministic fault injection plans.
//!
//! A [`FaultPlan`] is a time-sorted list of [`FaultEvent`]s that a
//! simulator drains into its own event queue at boot. Because the plan
//! is plain data — no callbacks, no wall-clock — two runs with the same
//! plan (or the same [`FaultPlan::random`] seed) inject exactly the
//! same faults at exactly the same simulated instants, and an empty
//! plan is indistinguishable from no plan at all.
//!
//! The kinds model the failure classes of interest for performance
//! isolation: component degradation (disk errors, a disk going slow, a
//! CPU going away) and antisocial load (a process crash leaving locks
//! behind, a fork bomb). Recovery is the *consumer's* job; this module
//! only decides what goes wrong and when.
//!
//! [`backoff_delay`] is the shared capped-exponential retry schedule,
//! kept here so tests and the kernel agree on the exact arithmetic.

use crate::time::{SimDuration, SimTime};
use crate::SplitMix64;

/// One kind of injectable fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The next `count` requests completing on `disk` fail with an I/O
    /// error (transient: later requests succeed again).
    DiskTransientErrors {
        /// Target disk index.
        disk: usize,
        /// How many completions fail.
        count: u32,
    },
    /// `disk` enters a degraded mode in which every service-time
    /// component is stretched by `factor` (≥ 1) until repaired.
    DiskDegrade {
        /// Target disk index.
        disk: usize,
        /// Service-time multiplier (≥ 1).
        factor: f64,
    },
    /// `disk` leaves degraded mode.
    DiskRepair {
        /// Target disk index.
        disk: usize,
    },
    /// `cpu` goes offline: its running process is preempted and no new
    /// work is dispatched to it.
    CpuOffline {
        /// Target CPU index.
        cpu: usize,
    },
    /// `cpu` comes back online.
    CpuOnline {
        /// Target CPU index.
        cpu: usize,
    },
    /// The oldest runnable process of user SPU `user_spu` is killed.
    ProcessCrash {
        /// Target user-SPU number (as in `SpuId::user`).
        user_spu: u32,
    },
    /// An antisocial fork-bomb job is spawned into user SPU `user_spu`:
    /// a tree of `width.pow(depth)` leaves, each touching `pages` pages
    /// and burning `burn` of CPU.
    ForkBomb {
        /// Target user-SPU number.
        user_spu: u32,
        /// Children forked per level (clamped by the consumer).
        width: u32,
        /// Fork-tree depth (clamped by the consumer).
        depth: u32,
        /// CPU burned per process.
        burn: SimDuration,
        /// Pages touched per process.
        pages: u32,
    },
    /// A retry storm hits user SPU `user_spu`: impatient clients
    /// re-submit their outstanding requests, duplicating the SPU's
    /// in-flight work up to `burst` extra copies. The open-loop
    /// amplification loop — timeouts breed retries breed load breed
    /// timeouts — that admission control exists to break.
    RetryStorm {
        /// Target user-SPU number.
        user_spu: u32,
        /// Maximum duplicate submissions (clamped by the consumer).
        burst: u32,
    },
}

/// A fault scheduled at a simulated instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// When to inject.
    pub at: SimTime,
    /// What to inject.
    pub kind: FaultKind,
}

/// A deterministic, time-sorted schedule of faults.
///
/// # Examples
///
/// ```
/// use event_sim::{FaultKind, FaultPlan, SimTime};
/// let plan = FaultPlan::new()
///     .at(SimTime::from_secs(2), FaultKind::CpuOffline { cpu: 3 })
///     .at(SimTime::from_secs(1), FaultKind::DiskRepair { disk: 0 });
/// // Events come back sorted by time regardless of insertion order.
/// assert_eq!(plan.events()[0].at, SimTime::from_secs(1));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// The shape of the machine a random plan should target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultDomain {
    /// Number of CPUs.
    pub cpus: usize,
    /// Number of disks.
    pub disks: usize,
    /// Number of user SPUs.
    pub user_spus: u32,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `kind` at `at`, keeping the plan time-sorted. Events at
    /// equal times keep their insertion order.
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, FaultEvent { at, kind });
    }

    /// Builder form of [`push`](Self::push).
    #[must_use]
    pub fn at(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.push(at, kind);
        self
    }

    /// The scheduled events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A seeded random campaign over every fault class, targeted at
    /// `domain` and contained in the middle of `[0, horizon]` so faults
    /// land while work is actually running. Degrade/offline events are
    /// paired with their repair/online counterparts. Equal seeds yield
    /// equal plans.
    pub fn random(seed: u64, horizon: SimTime, domain: &FaultDomain) -> Self {
        let mut rng = SplitMix64::new(seed);
        let lo = horizon.as_nanos() / 10;
        let hi = (horizon.as_nanos() / 10) * 9;
        let when = |rng: &mut SplitMix64| SimTime::from_nanos(rng.next_range(lo.max(1), hi));
        let mut plan = FaultPlan::new();
        if domain.disks > 0 {
            let disk = rng.next_below(domain.disks as u64) as usize;
            let count = rng.next_range(1, 4) as u32;
            plan.push(
                when(&mut rng),
                FaultKind::DiskTransientErrors { disk, count },
            );
            let disk = rng.next_below(domain.disks as u64) as usize;
            let factor = 2.0 + rng.next_f64() * 4.0;
            let start = when(&mut rng);
            let end = when(&mut rng).max(start + SimDuration::from_millis(200));
            plan.push(start, FaultKind::DiskDegrade { disk, factor });
            plan.push(end, FaultKind::DiskRepair { disk });
        }
        if domain.cpus > 1 {
            let cpu = rng.next_below(domain.cpus as u64) as usize;
            let start = when(&mut rng);
            let end = when(&mut rng).max(start + SimDuration::from_millis(200));
            plan.push(start, FaultKind::CpuOffline { cpu });
            plan.push(end, FaultKind::CpuOnline { cpu });
        }
        if domain.user_spus > 0 {
            let user_spu = rng.next_below(domain.user_spus as u64) as u32;
            plan.push(when(&mut rng), FaultKind::ProcessCrash { user_spu });
            let user_spu = rng.next_below(domain.user_spus as u64) as u32;
            plan.push(
                when(&mut rng),
                FaultKind::ForkBomb {
                    user_spu,
                    width: rng.next_range(2, 3) as u32,
                    depth: rng.next_range(2, 3) as u32,
                    burn: SimDuration::from_millis(rng.next_range(10, 40)),
                    pages: rng.next_range(16, 64) as u32,
                },
            );
            let user_spu = rng.next_below(domain.user_spus as u64) as u32;
            plan.push(
                when(&mut rng),
                FaultKind::RetryStorm {
                    user_spu,
                    burst: rng.next_range(2, 6) as u32,
                },
            );
        }
        plan
    }
}

/// Retry delay before attempt `attempt` (0-based): `base << attempt`,
/// capped at `cap`. Monotone non-decreasing in `attempt`, saturating
/// instead of overflowing.
pub fn backoff_delay(attempt: u32, base: SimDuration, cap: SimDuration) -> SimDuration {
    let scaled = (base.as_nanos() as u128) << attempt.min(63);
    SimDuration::from_nanos(scaled.min(cap.as_nanos() as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_keeps_events_sorted() {
        let mut plan = FaultPlan::new();
        plan.push(SimTime::from_secs(3), FaultKind::DiskRepair { disk: 0 });
        plan.push(SimTime::from_secs(1), FaultKind::CpuOffline { cpu: 1 });
        plan.push(SimTime::from_secs(2), FaultKind::CpuOnline { cpu: 1 });
        let ats: Vec<u64> = plan.events().iter().map(|e| e.at.as_nanos()).collect();
        let mut sorted = ats.clone();
        sorted.sort_unstable();
        assert_eq!(ats, sorted);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
    }

    #[test]
    fn equal_times_keep_insertion_order() {
        let t = SimTime::from_secs(1);
        let plan = FaultPlan::new()
            .at(t, FaultKind::CpuOffline { cpu: 0 })
            .at(t, FaultKind::CpuOffline { cpu: 1 });
        assert_eq!(plan.events()[0].kind, FaultKind::CpuOffline { cpu: 0 });
        assert_eq!(plan.events()[1].kind, FaultKind::CpuOffline { cpu: 1 });
    }

    #[test]
    fn random_plans_are_deterministic() {
        let domain = FaultDomain {
            cpus: 4,
            disks: 2,
            user_spus: 4,
        };
        let horizon = SimTime::from_secs(10);
        let a = FaultPlan::random(99, horizon, &domain);
        let b = FaultPlan::random(99, horizon, &domain);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = FaultPlan::random(100, horizon, &domain);
        assert_ne!(a, c);
    }

    #[test]
    fn random_plan_stays_inside_horizon() {
        let domain = FaultDomain {
            cpus: 8,
            disks: 4,
            user_spus: 8,
        };
        let horizon = SimTime::from_secs(60);
        for seed in 0..20 {
            let plan = FaultPlan::random(seed, horizon, &domain);
            for e in plan.events() {
                assert!(e.at > SimTime::ZERO);
                assert!(e.at <= horizon, "{:?} past horizon", e);
            }
        }
    }

    #[test]
    fn backoff_is_monotone_and_capped() {
        let base = SimDuration::from_millis(5);
        let cap = SimDuration::from_millis(80);
        let mut prev = SimDuration::ZERO;
        for attempt in 0..70 {
            let d = backoff_delay(attempt, base, cap);
            assert!(d >= prev, "not monotone at attempt {attempt}");
            assert!(d <= cap, "over cap at attempt {attempt}");
            assert!(d >= base.min(cap), "below base at attempt {attempt}");
            prev = d;
        }
        assert_eq!(backoff_delay(0, base, cap), base);
        assert_eq!(backoff_delay(1, base, cap), SimDuration::from_millis(10));
        assert_eq!(backoff_delay(63, base, cap), cap);
    }
}
