//! Deterministic discrete-event simulation engine.
//!
//! This crate provides the substrate every other crate in the workspace is
//! built on: a nanosecond-resolution simulated clock ([`SimTime`],
//! [`SimDuration`]), a stable-ordered event queue ([`EventQueue`]), a
//! deterministic pseudo-random number generator ([`SplitMix64`]) and small
//! statistics accumulators ([`stats`]).
//!
//! Everything here is intentionally free of OS time, threads, and global
//! state: a simulation run is a pure function of its inputs, which the paper
//! reproduction relies on for exact repeatability.
//!
//! # Examples
//!
//! ```
//! use event_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(10), "tick");
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), "io");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "io");
//! assert_eq!(t, SimTime::from_millis(5));
//! ```

pub mod arrival;
pub mod fault;
pub mod fingerprint;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use arrival::{ArrivalPlan, ArrivalProcess};
pub use fault::{backoff_delay, FaultDomain, FaultEvent, FaultKind, FaultPlan};
pub use fingerprint::{Fingerprint, Fnv64};
pub use queue::EventQueue;
pub use rng::SplitMix64;
pub use stats::{Histogram, LogHistogram, OnlineStats, TimeWeighted};
pub use time::{SimDuration, SimTime};
