//! Simulated time: instants and durations with nanosecond resolution.
//!
//! [`SimTime`] is an absolute instant since the start of the simulation and
//! [`SimDuration`] is a span between instants. Both are thin newtypes over
//! `u64` nanoseconds, so arithmetic is exact and cheap; 2^64 ns is ~584
//! simulated years, far beyond any run in this workspace.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in nanoseconds since simulation
/// start.
///
/// # Examples
///
/// ```
/// use event_sim::{SimDuration, SimTime};
/// let t = SimTime::from_millis(10) + SimDuration::from_micros(500);
/// assert_eq!(t.as_nanos(), 10_500_000);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use event_sim::SimDuration;
/// let d = SimDuration::from_millis(3) * 4;
/// assert_eq!(d.as_millis_f64(), 12.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinitely far"
    /// sentinel for deadlines.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ns` nanoseconds after simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `us` microseconds after simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant `ms` milliseconds after simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant `s` seconds after simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Rounds this instant *up* to the next multiple of `period` (returns
    /// `self` when already aligned). Useful for "at the next clock tick"
    /// semantics.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn round_up(self, period: SimDuration) -> SimTime {
        assert!(period.0 > 0, "period must be non-zero");
        let rem = self.0 % period.0;
        if rem == 0 {
            self
        } else {
            SimTime(self.0 + (period.0 - rem))
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from a float number of seconds, rounding to the
    /// nearest nanosecond and saturating at zero for negative inputs.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1e9).round() as u64)
        }
    }

    /// Creates a span from a float number of milliseconds (saturating at
    /// zero for negative inputs).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// The span in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span in milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `self - other`, saturating at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the span by a non-negative float factor, rounding to the
    /// nearest nanosecond.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "negative scale factor");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(5);
        assert_eq!(t + d, SimTime::from_millis(15));
        assert_eq!(t - d, SimTime::from_millis(5));
        assert_eq!(SimTime::from_millis(15) - t, d);
        assert_eq!(d * 3, SimDuration::from_millis(15));
        assert_eq!(SimDuration::from_millis(15) / 3, d);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(10);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(5));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn round_up_to_period() {
        let tick = SimDuration::from_millis(10);
        assert_eq!(
            SimTime::from_millis(10).round_up(tick),
            SimTime::from_millis(10)
        );
        assert_eq!(
            SimTime::from_millis(11).round_up(tick),
            SimTime::from_millis(20)
        );
        assert_eq!(SimTime::ZERO.round_up(tick), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "period must be non-zero")]
    fn round_up_zero_period_panics() {
        let _ = SimTime::from_millis(1).round_up(SimDuration::ZERO);
    }

    #[test]
    fn float_duration_construction() {
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_millis_f64(1.5),
            SimDuration::from_micros(1500)
        );
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(0.25), SimDuration::from_nanos(3));
        assert_eq!(d.mul_f64(2.0), SimDuration::from_nanos(20));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
