//! A stable-ordered pending-event set.
//!
//! [`EventQueue`] is a min-heap keyed on [`SimTime`] with a monotonically
//! increasing sequence number as tie-breaker, so events scheduled for the
//! same instant are delivered in the order they were scheduled. That
//! stability is what makes whole-simulation runs bit-for-bit reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending simulation event with its due time and insertion sequence.
#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events of type `E` are scheduled at absolute [`SimTime`]s and popped in
/// time order; ties are broken by scheduling order (FIFO).
///
/// # Examples
///
/// ```
/// use event_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), 'b');
/// q.schedule(SimTime::from_millis(1), 'a');
/// q.schedule(SimTime::from_millis(2), 'c');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the time of the last popped event:
    /// scheduling into the past is always a simulation bug.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.last_popped,
            "scheduling into the past: {at} < {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event with its due time, or `None`
    /// if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.last_popped = entry.at;
        Some((entry.at, entry.event))
    }

    /// The due time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 'x');
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn same_time_as_last_pop_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.pop();
        q.schedule(SimTime::from_millis(10), 2);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 2)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), ());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }
}
