//! A stable-ordered pending-event set.
//!
//! [`EventQueue`] delivers events in time order with a monotonically
//! increasing sequence number as tie-breaker, so events scheduled for the
//! same instant are delivered in the order they were scheduled. That
//! stability is what makes whole-simulation runs bit-for-bit reproducible.
//!
//! Internally it is a two-level timing wheel rather than a binary heap:
//!
//! * a **near wheel** of `NEAR_BUCKETS` (256) slots, each covering
//!   `2^BUCKET_SHIFT` ns (~1.05 ms) of simulated time — sized so the
//!   kernel's densest periodic traffic (10 ms ticks, 30 ms quanta,
//!   100 ms policy passes) lands within the ~268 ms near horizon and is
//!   bucketed with O(1) scheduling instead of a heap sift;
//! * a **far lane** (`BTreeMap` keyed by bucket number) for events past
//!   the horizon (e.g. 1 s sync-daemon wakeups), promoted into the near
//!   wheel as the cursor advances.
//!
//! Only the bucket currently being drained is sorted (lazily, once), so
//! the common schedule→pop cycle never pays a comparison-based reorder of
//! the whole pending set. Pop order is exactly the old heap's: ascending
//! `(time, sequence)` — verified side-by-side against a reference heap by
//! `tests/prop_queue.rs`.

use std::collections::BTreeMap;

use crate::time::SimTime;

/// log2 of a near-wheel bucket's width in nanoseconds (~1.05 ms).
const BUCKET_SHIFT: u32 = 20;
/// Number of near-wheel slots; the near horizon is
/// `NEAR_BUCKETS << BUCKET_SHIFT` ns ≈ 268 ms.
const NEAR_BUCKETS: u64 = 256;
const NEAR_MASK: u64 = NEAR_BUCKETS - 1;
/// Words in the near-wheel occupancy bitmap.
const OCC_WORDS: usize = (NEAR_BUCKETS as usize) / 64;

#[inline]
fn bucket_of(at: SimTime) -> u64 {
    at.as_nanos() >> BUCKET_SHIFT
}

/// A pending simulation event with its due time and insertion sequence.
#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// One near-wheel slot: the entries of a single absolute bucket.
///
/// `bucket` is only meaningful while `entries` is non-empty; all entries
/// in a slot belong to that one bucket.
#[derive(Debug)]
struct Slot<E> {
    bucket: u64,
    entries: Vec<Entry<E>>,
}

impl<E> Default for Slot<E> {
    fn default() -> Self {
        Slot {
            bucket: 0,
            entries: Vec::new(),
        }
    }
}

/// A deterministic future-event list.
///
/// Events of type `E` are scheduled at absolute [`SimTime`]s and popped in
/// time order; ties are broken by scheduling order (FIFO).
///
/// # Examples
///
/// ```
/// use event_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), 'b');
/// q.schedule(SimTime::from_millis(1), 'a');
/// q.schedule(SimTime::from_millis(2), 'c');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Near wheel, indexed by `bucket & NEAR_MASK`. Invariant: a
    /// non-empty slot's `bucket` lies in `[cursor, cursor + NEAR_BUCKETS)`.
    near: Vec<Slot<E>>,
    /// Occupancy bitmap over the near wheel: bit `i` is set iff
    /// `near[i].entries` is non-empty. Because every occupied bucket lies
    /// in `[cursor, cursor + NEAR_BUCKETS)`, a circular first-set-bit scan
    /// starting at `cursor & NEAR_MASK` visits slots in ascending bucket
    /// order — so "min non-empty bucket" is O(words), not O(slots).
    occ: [u64; OCC_WORDS],
    /// Far lane: bucket number → entries, for buckets at or beyond
    /// `cursor + NEAR_BUCKETS` (keys are promoted on cursor advance, so
    /// the invariant holds between any two public calls).
    far: BTreeMap<u64, Vec<Entry<E>>>,
    /// The bucket currently being drained.
    cursor: u64,
    /// Whether the cursor slot is sorted descending by `(at, seq)` (next
    /// event last, so draining is `Vec::pop`).
    cursor_sorted: bool,
    /// Total pending entries across both levels.
    len: usize,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            near: (0..NEAR_BUCKETS).map(|_| Slot::default()).collect(),
            occ: [0; OCC_WORDS],
            far: BTreeMap::new(),
            cursor: 0,
            cursor_sorted: true,
            len: 0,
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    #[inline]
    fn set_occ(&mut self, idx: usize) {
        self.occ[idx >> 6] |= 1 << (idx & 63);
    }

    #[inline]
    fn clear_occ(&mut self, idx: usize) {
        self.occ[idx >> 6] &= !(1 << (idx & 63));
    }

    /// First occupied slot index at or after `start` in circular order,
    /// if any. Combined with the horizon invariant this is the slot of
    /// the minimum non-empty bucket when `start = cursor & NEAR_MASK`.
    fn next_occupied(&self, start: usize) -> Option<usize> {
        let w0 = start >> 6;
        let masked = self.occ[w0] & (!0u64 << (start & 63));
        if masked != 0 {
            return Some((w0 << 6) + masked.trailing_zeros() as usize);
        }
        for w in w0 + 1..OCC_WORDS {
            if self.occ[w] != 0 {
                return Some((w << 6) + self.occ[w].trailing_zeros() as usize);
            }
        }
        for w in 0..=w0 {
            let word = if w == w0 {
                self.occ[w] & !(!0u64 << (start & 63))
            } else {
                self.occ[w]
            };
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Schedules `event` to fire at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the time of the last popped event:
    /// scheduling into the past is always a simulation bug.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.last_popped,
            "scheduling into the past: {at} < {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { at, seq, event };
        let bucket = bucket_of(at);
        debug_assert!(bucket >= self.cursor);
        if bucket >= self.cursor + NEAR_BUCKETS {
            self.far.entry(bucket).or_default().push(entry);
        } else {
            let sorted = self.cursor_sorted && bucket == self.cursor;
            let idx = (bucket & NEAR_MASK) as usize;
            self.set_occ(idx);
            let slot = &mut self.near[idx];
            if slot.entries.is_empty() {
                slot.bucket = bucket;
            } else {
                debug_assert_eq!(slot.bucket, bucket);
            }
            if sorted {
                // Keep the active bucket's descending run intact: a fresh
                // seq is larger than every existing one, so equal-time
                // entries land before (deeper than) their elders.
                let key = entry.key();
                let pos = slot.entries.partition_point(|e| e.key() > key);
                slot.entries.insert(pos, entry);
            } else {
                slot.entries.push(entry);
            }
        }
        self.len += 1;
    }

    /// Removes and returns the earliest event with its due time, or `None`
    /// if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        {
            let idx = (self.cursor & NEAR_MASK) as usize;
            let slot = &mut self.near[idx];
            if !slot.entries.is_empty() && slot.bucket == self.cursor {
                if !self.cursor_sorted {
                    // (at, seq) pairs are unique, so unstable is safe.
                    slot.entries
                        .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                    self.cursor_sorted = true;
                }
                let entry = slot.entries.pop().expect("checked non-empty");
                self.len -= 1;
                self.last_popped = entry.at;
                if slot.entries.is_empty() {
                    self.clear_occ(idx);
                }
                return Some((entry.at, entry.event));
            }
        }
        self.advance();
        self.pop()
    }

    /// Drains the earliest event **and every other event due at the same
    /// instant** into `out` (cleared first), in FIFO `(time, seq)` order.
    /// Returns the shared due time, or `None` if the queue is empty.
    ///
    /// Equal-time events always share one near bucket and sit contiguous
    /// at the tail of the sorted cursor slot, so the drain is a run of
    /// `Vec::pop`s with no re-scan. Events scheduled *while the caller
    /// handles the batch* at that same instant get larger sequence
    /// numbers and are returned by the next `pop_run` call — exactly the
    /// order a one-at-a-time `pop` loop would deliver.
    pub fn pop_run(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        out.clear();
        if self.len == 0 {
            return None;
        }
        loop {
            let idx = (self.cursor & NEAR_MASK) as usize;
            let slot = &mut self.near[idx];
            if !slot.entries.is_empty() && slot.bucket == self.cursor {
                if !self.cursor_sorted {
                    slot.entries
                        .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                    self.cursor_sorted = true;
                }
                let at = slot.entries.last().expect("checked non-empty").at;
                while slot.entries.last().is_some_and(|e| e.at == at) {
                    out.push(slot.entries.pop().expect("checked non-empty").event);
                }
                self.len -= out.len();
                self.last_popped = at;
                if slot.entries.is_empty() {
                    self.clear_occ(idx);
                }
                return Some(at);
            }
            self.advance();
        }
    }

    /// Jumps the cursor to the next non-empty bucket (near or far) and
    /// promotes far buckets that fall inside the new near horizon.
    ///
    /// Only called with `len > 0` and the cursor slot drained.
    fn advance(&mut self) {
        let next_near = self
            .next_occupied((self.cursor & NEAR_MASK) as usize)
            .map(|i| self.near[i].bucket);
        let next_far = self.far.keys().next().copied();
        let target = match (next_near, next_far) {
            (Some(n), Some(f)) => n.min(f),
            (Some(n), None) => n,
            (None, Some(f)) => f,
            (None, None) => unreachable!("advance called on empty queue"),
        };
        self.cursor = target;
        self.cursor_sorted = false;
        // Promote far buckets now inside the near horizon. A promoted
        // bucket's slot is necessarily free: any occupant would share its
        // residue mod NEAR_BUCKETS while both lie in the same horizon-wide
        // window, which forces equality — and far keys were strictly
        // beyond every near bucket.
        while let Some(&bucket) = self.far.keys().next() {
            if bucket >= self.cursor + NEAR_BUCKETS {
                break;
            }
            let entries = self.far.remove(&bucket).expect("key just observed");
            let idx = (bucket & NEAR_MASK) as usize;
            self.set_occ(idx);
            let slot = &mut self.near[idx];
            debug_assert!(slot.entries.is_empty());
            slot.bucket = bucket;
            slot.entries = entries;
        }
    }

    /// The due time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        let slot = &self.near[(self.cursor & NEAR_MASK) as usize];
        if !slot.entries.is_empty() && slot.bucket == self.cursor {
            return if self.cursor_sorted {
                slot.entries.last().map(|e| e.at)
            } else {
                slot.entries.iter().map(|e| e.at).min()
            };
        }
        let near_best = self
            .next_occupied((self.cursor & NEAR_MASK) as usize)
            .and_then(|i| self.near[i].entries.iter().map(|e| e.at).min());
        let far_best = self
            .far
            .values()
            .next()
            .and_then(|v| v.iter().map(|e| e.at).min());
        match (near_best, far_best) {
            (Some(n), Some(f)) => Some(n.min(f)),
            (Some(n), None) => Some(n),
            (None, f) => f,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events and resets the queue to its initial
    /// state, **including the scheduling-into-the-past watermark**: a
    /// cleared queue accepts schedules at any time again, exactly like a
    /// fresh one. (Previously the watermark survived `clear`, so a reused
    /// queue spuriously panicked on early schedules.)
    pub fn clear(&mut self) {
        for slot in &mut self.near {
            slot.entries.clear();
        }
        self.occ = [0; OCC_WORDS];
        self.far.clear();
        self.cursor = 0;
        self.cursor_sorted = true;
        self.len = 0;
        self.next_seq = 0;
        self.last_popped = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 'x');
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn same_time_as_last_pop_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.pop();
        q.schedule(SimTime::from_millis(10), 2);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 2)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), ());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_resets_past_watermark() {
        // Regression: clear() used to leave last_popped set, so a reused
        // queue panicked on schedules earlier than the stale watermark.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(500), 'a');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.clear();
        q.schedule(SimTime::from_millis(1), 'b');
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), 'b')));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        // 1 s and 10 s are far past the ~268 ms near horizon, so both
        // start in the far lane and must be promoted in order.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10_000), "far2");
        q.schedule(SimTime::from_millis(1), "near");
        q.schedule(SimTime::from_millis(1_000), "far1");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1_000)));
        assert_eq!(q.pop().unwrap().1, "far1");
        // Scheduling relative to the advanced cursor still works.
        q.schedule(SimTime::from_millis(1_002), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "far2");
        assert!(q.is_empty());
    }

    #[test]
    fn pop_run_drains_same_instant_batch_in_fifo_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.schedule(t, 0);
        q.schedule(SimTime::from_millis(9), 99);
        q.schedule(t, 1);
        q.schedule(t, 2);
        let mut buf = Vec::new();
        assert_eq!(q.pop_run(&mut buf), Some(t));
        assert_eq!(buf, vec![0, 1, 2]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_run(&mut buf), Some(SimTime::from_millis(9)));
        assert_eq!(buf, vec![99]);
        assert_eq!(q.pop_run(&mut buf), None);
        assert!(buf.is_empty());
    }

    #[test]
    fn pop_run_then_same_instant_schedule_comes_next() {
        // An event scheduled at the batch's instant *after* the batch was
        // drained must be delivered by the next pop_run — same order as a
        // one-at-a-time pop loop.
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.schedule(t, 'a');
        q.schedule(t, 'b');
        let mut buf = Vec::new();
        assert_eq!(q.pop_run(&mut buf), Some(t));
        assert_eq!(buf, vec!['a', 'b']);
        q.schedule(t, 'c');
        assert_eq!(q.pop_run(&mut buf), Some(t));
        assert_eq!(buf, vec!['c']);
    }

    #[test]
    fn pop_run_crosses_the_far_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1_000), "far");
        let mut buf = Vec::new();
        assert_eq!(q.pop_run(&mut buf), Some(SimTime::from_millis(1_000)));
        assert_eq!(buf, vec!["far"]);
    }

    #[test]
    fn pop_and_pop_run_interleave_consistently() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(7);
        for i in 0..5 {
            q.schedule(t, i);
        }
        assert_eq!(q.pop().unwrap().1, 0);
        let mut buf = Vec::new();
        assert_eq!(q.pop_run(&mut buf), Some(t));
        assert_eq!(buf, vec![1, 2, 3, 4]);
    }

    #[test]
    fn schedule_into_active_bucket_keeps_fifo() {
        // Pop once to force the cursor bucket sorted, then schedule more
        // same-instant events into that bucket: FIFO must hold.
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(10);
        q.schedule(t, 0);
        q.schedule(t, 1);
        assert_eq!(q.pop().unwrap().1, 0);
        q.schedule(t, 2);
        q.schedule(t, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }
}
