//! Deterministic pseudo-random numbers for workload generation.
//!
//! [`SplitMix64`] is a tiny, fast, well-distributed 64-bit generator
//! (Steele/Lea/Flood, used as the seeding PRNG in many suites). It is more
//! than adequate for simulation jitter and keeps the workspace free of
//! external RNG dependencies, which in turn keeps runs exactly reproducible
//! across crate upgrades.

use crate::time::SimDuration;

/// A deterministic 64-bit pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use event_sim::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds produce equal streams.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent child generator; useful for giving each
    /// process or subsystem its own stream so that adding draws in one
    /// place does not perturb another.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded generation (Lemire). The tiny modulo bias
        // of the plain approach would be irrelevant here, but this is just
        // as cheap and exact for small bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.next_below(hi - lo + 1)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A duration jittered uniformly in `[base*(1-frac), base*(1+frac)]`.
    /// `frac` is clamped to `[0, 1]`.
    pub fn jitter(&mut self, base: SimDuration, frac: f64) -> SimDuration {
        let frac = frac.clamp(0.0, 1.0);
        let scale = 1.0 - frac + 2.0 * frac * self.next_f64();
        base.mul_f64(scale)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_values_respect_bound() {
        let mut r = SplitMix64::new(4);
        for _ in 0..10_000 {
            assert!(r.next_below(7) < 7);
            let v = r.next_range(10, 20);
            assert!((10..=20).contains(&v));
        }
    }

    #[test]
    fn bounded_values_cover_range() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.next_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn jitter_within_band() {
        let mut r = SplitMix64::new(6);
        let base = SimDuration::from_millis(100);
        for _ in 0..1000 {
            let d = r.jitter(base, 0.2);
            assert!(d >= SimDuration::from_millis(80), "{d}");
            assert!(d <= SimDuration::from_millis(120), "{d}");
        }
    }

    #[test]
    fn jitter_zero_frac_is_identity() {
        let mut r = SplitMix64::new(6);
        let base = SimDuration::from_millis(100);
        assert_eq!(r.jitter(base, 0.0), base);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SplitMix64::new(9);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle should change order with overwhelming probability"
        );
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SplitMix64::new(12);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
