//! Property tests for the simulation substrate.

use event_sim::{
    EventQueue, Histogram, LogHistogram, OnlineStats, SimDuration, SimTime, SplitMix64,
};
use proptest::prelude::*;

proptest! {
    /// Events pop in non-decreasing time order, and same-time events pop
    /// in insertion order, for any schedule sequence.
    #[test]
    fn queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), (t, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut count = 0;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at, SimTime::from_nanos(t));
            if let Some((lt, li)) = last {
                prop_assert!(at >= lt);
                if at == lt {
                    prop_assert!(i > li, "same-time events must be FIFO");
                }
            }
            last = Some((at, i));
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// The queue length always reflects schedules minus pops.
    #[test]
    fn queue_len_is_consistent(times in prop::collection::vec(0u64..1_000, 0..100), pops in 0usize..120) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_nanos(t), ());
        }
        let mut popped = 0;
        for _ in 0..pops {
            if q.pop().is_some() {
                popped += 1;
            }
        }
        prop_assert_eq!(q.len(), times.len() - popped);
    }

    /// Bounded RNG draws stay in bounds for any seed/bound.
    #[test]
    fn rng_bounds_hold(seed in any::<u64>(), bound in 1u64..10_000) {
        let mut r = SplitMix64::new(seed);
        for _ in 0..100 {
            prop_assert!(r.next_below(bound) < bound);
        }
    }

    /// Range draws are inclusive of both ends and never escape.
    #[test]
    fn rng_range_holds(seed in any::<u64>(), lo in 0u64..1000, width in 0u64..1000) {
        let hi = lo + width;
        let mut r = SplitMix64::new(seed);
        for _ in 0..50 {
            let v = r.next_range(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
        }
    }

    /// Jitter never leaves the configured band.
    #[test]
    fn jitter_band_holds(seed in any::<u64>(), base_ms in 1u64..10_000, frac in 0.0f64..1.0) {
        let mut r = SplitMix64::new(seed);
        let base = SimDuration::from_millis(base_ms);
        let d = r.jitter(base, frac);
        let lo = base.mul_f64(1.0 - frac);
        let hi = base.mul_f64(1.0 + frac);
        prop_assert!(d >= lo && d <= hi, "{d} outside [{lo}, {hi}]");
    }

    /// Identical seeds replay identical streams regardless of draw mix.
    #[test]
    fn rng_streams_replay(seed in any::<u64>(), ops in prop::collection::vec(0u8..3, 1..50)) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for op in ops {
            match op {
                0 => prop_assert_eq!(a.next_u64(), b.next_u64()),
                1 => prop_assert_eq!(a.next_f64(), b.next_f64()),
                _ => prop_assert_eq!(a.next_below(17), b.next_below(17)),
            }
        }
    }

    /// Welford statistics agree with naive computation.
    #[test]
    fn online_stats_match_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() < 1e-4 * var.abs().max(1.0));
        prop_assert_eq!(s.min().unwrap(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max().unwrap(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging partitions equals single-stream accumulation.
    #[test]
    fn online_stats_merge_associates(xs in prop::collection::vec(-1e3f64..1e3, 2..100), split in 1usize..99) {
        let split = split.min(xs.len() - 1);
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..split] {
            a.add(x);
        }
        for &x in &xs[split..] {
            b.add(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * whole.mean().abs().max(1.0));
    }

    /// Histogram percentiles are monotone in p.
    #[test]
    fn histogram_percentiles_monotone(xs in prop::collection::vec(0.0f64..100.0, 1..200)) {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for &x in &xs {
            h.add(x);
        }
        let mut last = f64::NEG_INFINITY;
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
            let v = h.percentile(p).unwrap();
            prop_assert!(v >= last, "percentile not monotone at p={p}");
            last = v;
        }
    }

    /// round_up lands on a multiple at or after the input.
    #[test]
    fn round_up_properties(t in 0u64..1_000_000, period in 1u64..10_000) {
        let time = SimTime::from_nanos(t);
        let p = SimDuration::from_nanos(period);
        let r = time.round_up(p);
        prop_assert!(r >= time);
        prop_assert_eq!(r.as_nanos() % period, 0);
        prop_assert!(r.as_nanos() - t < period);
    }

    /// Merging two log histograms matches one histogram built over the
    /// concatenation of their streams (bucket-exactly; the running sum
    /// only up to float re-association).
    #[test]
    fn log_histogram_merge_matches_concat(
        xs in prop::collection::vec(1u64..100_000_000, 0..100),
        ys in prop::collection::vec(1u64..100_000_000, 0..100),
    ) {
        let mut a = LogHistogram::latency();
        let mut b = LogHistogram::latency();
        let mut whole = LogHistogram::latency();
        for &v in &xs {
            a.add(v as f64 * 1e-6);
            whole.add(v as f64 * 1e-6);
        }
        for &v in &ys {
            b.add(v as f64 * 1e-6);
            whole.add(v as f64 * 1e-6);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert_eq!(a.max(), whole.max());
        prop_assert_eq!(a.nonzero_buckets(), whole.nonzero_buckets());
        prop_assert!((a.sum() - whole.sum()).abs() <= 1e-9 * whole.sum().abs());
        prop_assert_eq!(a.percentile(50.0), whole.percentile(50.0));
        prop_assert_eq!(a.percentile(99.0), whole.percentile(99.0));
    }

    /// Log-histogram percentiles are monotone in p and stay within one
    /// growth factor of the true data range.
    #[test]
    fn log_histogram_percentiles_bounded(xs in prop::collection::vec(1u64..100_000_000, 1..200)) {
        let mut h = LogHistogram::latency();
        let mut hi = 0.0f64;
        for &v in &xs {
            let x = v as f64 * 1e-6;
            hi = hi.max(x);
            h.add(x);
        }
        let mut last = 0.0f64;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let q = h.percentile(p).unwrap();
            prop_assert!(q >= last, "not monotone at p={p}");
            last = q;
        }
        // The top percentile lands inside the max value's x2 bucket.
        let p100 = h.percentile(100.0).unwrap();
        prop_assert!(p100 >= hi * (1.0 - 1e-12), "p100={p100} below max={hi}");
        prop_assert!(p100 <= hi * 2.0 * (1.0 + 1e-12), "p100={p100} beyond bucket of max={hi}");
    }
}
