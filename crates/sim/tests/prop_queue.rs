//! Wheel/heap equivalence: the timing-wheel [`EventQueue`] must pop in
//! exactly the order the old `BinaryHeap` implementation did — ascending
//! `(time, sequence)` — for arbitrary interleaved schedule/pop traffic,
//! including same-instant FIFO ties and far-future events that cross the
//! near-wheel horizon (~268 ms).
//!
//! The reference model here *is* the pre-wheel implementation: a
//! `BinaryHeap` of reverse-ordered `(at, seq)` entries.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use event_sim::{EventQueue, SimTime, SplitMix64};
use proptest::prelude::*;

/// The old heap-backed queue, kept as the ordering oracle.
#[derive(Default)]
struct RefQueue {
    heap: BinaryHeap<RefEntry>,
    next_seq: u64,
}

struct RefEntry {
    at: SimTime,
    seq: u64,
    tag: u64,
}

impl PartialEq for RefEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for RefEntry {}
impl PartialOrd for RefEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RefEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl RefQueue {
    fn schedule(&mut self, at: SimTime, tag: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(RefEntry { at, seq, tag });
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        self.heap.pop().map(|e| (e.at, e.tag))
    }
}

/// Drives the wheel and the reference heap with identical traffic drawn
/// from `seed`, asserting every pop matches.
///
/// Offsets mix three scales so the near wheel, the active (sorted)
/// bucket, and the far lane all see traffic: 0 forces same-instant ties,
/// sub-millisecond lands inside one bucket, and multi-second offsets
/// start in the overflow lane and must be promoted across the horizon.
fn run_equivalence(seed: u64, steps: usize) {
    let mut rng = SplitMix64::new(seed);
    let mut wheel = EventQueue::new();
    let mut heap = RefQueue::default();
    let mut now = SimTime::ZERO;
    let mut tag = 0u64;

    for _ in 0..steps {
        if rng.next_below(3) < 2 || wheel.is_empty() {
            // Schedule 1-4 events at or after `now`.
            for _ in 0..=rng.next_below(3) {
                let offset = match rng.next_below(4) {
                    0 => 0,                             // same-instant tie
                    1 => rng.next_below(1 << 19),       // inside one bucket
                    2 => rng.next_below(200_000_000),   // inside the near horizon
                    _ => 1 << (28 + rng.next_below(5)), // far lane (268 ms .. 4.3 s out)
                };
                let at = SimTime::from_nanos(now.as_nanos() + offset);
                wheel.schedule(at, tag);
                heap.schedule(at, tag);
                tag += 1;
            }
        } else {
            let got = wheel.pop();
            let want = heap.pop();
            assert_eq!(got, want, "wheel diverged from reference heap");
            if let Some((at, _)) = got {
                now = at;
            }
        }
        assert_eq!(wheel.peek_time(), heap.heap.peek().map(|e| e.at));
        assert_eq!(wheel.len(), heap.heap.len());
    }
    // Drain both to the end: the tails must agree too.
    loop {
        let got = wheel.pop();
        let want = heap.pop();
        assert_eq!(got, want, "wheel diverged from reference heap in drain");
        if got.is_none() {
            break;
        }
    }
}

proptest! {
    /// Random interleaved schedule/pop traffic pops identically from the
    /// wheel and the reference heap.
    #[test]
    fn wheel_matches_heap(seed in any::<u64>()) {
        run_equivalence(seed, 400);
    }

    /// Bursts of same-instant events keep FIFO order through the wheel's
    /// sorted-bucket path, matching the heap's seq tie-break.
    #[test]
    fn same_instant_bursts_match(seed in any::<u64>(), burst in 2usize..40) {
        let mut wheel = EventQueue::new();
        let mut heap = RefQueue::default();
        let mut rng = SplitMix64::new(seed);
        let t = SimTime::from_nanos(rng.next_below(1 << 30));
        for tag in 0..burst as u64 {
            wheel.schedule(t, tag);
            heap.schedule(t, tag);
        }
        // Pop half, then schedule more ties into the now-sorted bucket.
        for _ in 0..burst / 2 {
            prop_assert_eq!(wheel.pop(), heap.pop());
        }
        for tag in 0..4u64 {
            wheel.schedule(t, 1000 + tag);
            heap.schedule(t, 1000 + tag);
        }
        loop {
            let (got, want) = (wheel.pop(), heap.pop());
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }

    /// Events far past the near horizon are promoted in exactly the
    /// order the heap would deliver them.
    #[test]
    fn far_future_promotion_matches(seed in any::<u64>()) {
        let mut wheel = EventQueue::new();
        let mut heap = RefQueue::default();
        let mut rng = SplitMix64::new(seed);
        // All-far schedule: seconds out, spanning many horizon windows.
        for tag in 0..64u64 {
            let at = SimTime::from_nanos(rng.next_below(8_000_000_000));
            wheel.schedule(at, tag);
            heap.schedule(at, tag);
        }
        loop {
            let (got, want) = (wheel.pop(), heap.pop());
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }
}
