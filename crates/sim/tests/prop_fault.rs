//! Property tests for the fault-injection plan and backoff policy.

use event_sim::{backoff_delay, FaultDomain, FaultKind, FaultPlan, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Backoff is monotone non-decreasing in the attempt number and
    /// never exceeds the cap.
    #[test]
    fn backoff_monotone_and_capped(
        base_us in 1u64..100_000,
        cap_ms in 1u64..10_000,
        attempt in 0u32..80,
    ) {
        let base = SimDuration::from_micros(base_us);
        let cap = SimDuration::from_millis(cap_ms);
        let cap = cap.max(base);
        let d0 = backoff_delay(attempt, base, cap);
        let d1 = backoff_delay(attempt + 1, base, cap);
        prop_assert!(d1 >= d0, "backoff not monotone: {d0:?} then {d1:?}");
        prop_assert!(d0 <= cap, "backoff {d0:?} above cap {cap:?}");
        prop_assert!(d0 >= base.min(cap));
    }

    /// Retry schedules are bounded: the total delay of any bounded retry
    /// sequence is at most `attempts * cap`.
    #[test]
    fn total_backoff_bounded(attempts in 1u32..16, cap_ms in 1u64..1_000) {
        let base = SimDuration::from_micros(500);
        let cap = SimDuration::from_millis(cap_ms).max(base);
        let total: SimDuration = (0..attempts)
            .map(|a| backoff_delay(a, base, cap))
            .fold(SimDuration::ZERO, |acc, d| acc + d);
        prop_assert!(total <= cap.mul_f64(attempts as f64) + SimDuration::from_nanos(1));
    }

    /// `FaultPlan::random` is a pure function of its seed: equal seeds
    /// give equal plans, and the events are sorted within the horizon.
    #[test]
    fn random_plan_deterministic_and_sorted(seed in 0u64..10_000) {
        let domain = FaultDomain { cpus: 4, disks: 2, user_spus: 3 };
        let horizon = SimTime::from_secs(10);
        let a = FaultPlan::random(seed, horizon, &domain);
        let b = FaultPlan::random(seed, horizon, &domain);
        prop_assert_eq!(&a, &b);
        let mut last = SimTime::ZERO;
        for e in a.events() {
            prop_assert!(e.at >= last, "plan not sorted");
            prop_assert!(e.at <= horizon, "event beyond horizon");
            last = e.at;
        }
    }

    /// Random plans only target resources that exist in the domain.
    #[test]
    fn random_plan_respects_domain(seed in 0u64..10_000) {
        let domain = FaultDomain { cpus: 2, disks: 1, user_spus: 2 };
        let plan = FaultPlan::random(seed, SimTime::from_secs(5), &domain);
        for e in plan.events() {
            match e.kind {
                FaultKind::DiskTransientErrors { disk, .. }
                | FaultKind::DiskDegrade { disk, .. }
                | FaultKind::DiskRepair { disk } => prop_assert!(disk < domain.disks),
                FaultKind::CpuOffline { cpu } | FaultKind::CpuOnline { cpu } => {
                    prop_assert!(cpu < domain.cpus)
                }
                FaultKind::ProcessCrash { user_spu }
                | FaultKind::ForkBomb { user_spu, .. }
                | FaultKind::RetryStorm { user_spu, .. } => {
                    prop_assert!(user_spu < domain.user_spus)
                }
            }
        }
    }

    /// Pushing events out of order still yields a time-sorted plan.
    #[test]
    fn pushes_keep_plan_sorted(times in prop::collection::vec(0u64..10_000, 1..40)) {
        let mut plan = FaultPlan::new();
        for &ms in &times {
            plan.push(
                SimTime::from_millis(ms),
                FaultKind::DiskTransientErrors { disk: 0, count: 1 },
            );
        }
        let mut last = SimTime::ZERO;
        for e in plan.events() {
            prop_assert!(e.at >= last);
            last = e.at;
        }
        prop_assert_eq!(plan.len(), times.len());
    }
}
