//! An offline, dependency-free subset of the `proptest` API.
//!
//! The workspace builds in environments with no access to a crates
//! registry, so the real `proptest` crate cannot be resolved. This shim
//! implements exactly the surface our property tests use — range and
//! tuple strategies, `any`, `prop::collection::vec`, `prop_map`, the
//! `proptest!` macro, and `prop_assert*` — with a small deterministic
//! RNG in place of proptest's case generation.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the assertion message
//!   but is not minimised.
//! * **Deterministic cases.** The RNG is seeded from the test function
//!   name, so every run of a test explores the same inputs. This matches
//!   the workspace-wide determinism contract.
//! * **No persistence files**, forking, or timeout handling.
//!
//! The dependency is renamed in the workspace manifest
//! (`proptest = { package = "proptest-shim", .. }`) so test code is
//! written against the ordinary `proptest::prelude::*` import and would
//! compile unchanged against the real crate.

/// Deterministic case generation: a SplitMix64 RNG seeded per test.
pub mod test_runner {
    /// Run-loop configuration; only `cases` is honoured.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Smaller than real proptest's 256: our properties run whole
            // simulations per case and must stay fast under `cargo test`.
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64: tiny, fast, and plenty for test-case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from an arbitrary string (the test name), so
        /// each property explores a stable, distinct input sequence.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, then a fixed tweak so an empty name
            // still yields a workable seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)` (debiased by rejection).
        pub fn next_below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "bound must be positive");
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// The real crate's strategies produce shrinkable value *trees*; this
    /// shim generates plain values directly.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u64) - (self.start as u64);
                    self.start + rng.next_below(width) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as u64) - (lo as u64);
                    if width == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.next_below(width + 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()`: the whole-domain strategy for simple types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size band for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length falls in `size`, elements drawn from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.next_below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced combinators, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property; panics with the message on
/// failure (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let i = (0usize..=4).generate(&mut rng);
            assert!(i <= 4);
        }
    }

    #[test]
    fn vec_lengths_respect_band() {
        let mut rng = TestRng::deterministic("vec_lengths_respect_band");
        for _ in 0..200 {
            let v = prop::collection::vec(0u8..5, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::deterministic("same-name");
        let mut b = TestRng::deterministic("same-name");
        let strat = (0u64..1000, 0.0f64..1.0).prop_map(|(n, f)| (n * 2, f));
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn distinct_names_distinct_streams() {
        let mut a = TestRng::deterministic("stream-one");
        let mut b = TestRng::deterministic("stream-two");
        let draws_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(draws_a, draws_b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, tuples, any, and trailing comma.
        #[test]
        fn macro_smoke((a, b) in (0u32..10, 0u32..10), flip in any::<bool>(),) {
            prop_assert!(a < 10 && b < 10);
            if flip {
                prop_assert_eq!(a + b, b + a);
            }
        }
    }
}
