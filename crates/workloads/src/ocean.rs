//! The Ocean workload: a barrier-synchronized parallel application.
//!
//! §4.3 runs "a four processor parallel Ocean application" (SPLASH-2
//! Ocean, [WOT+95]): compute-bound timesteps separated by global
//! barriers. Barriers are what make Ocean sensitive to CPU interference:
//! if one worker is descheduled, every worker waits — exactly the effect
//! performance isolation prevents.

use std::sync::Arc;

use event_sim::SimDuration;
use smp_kernel::{BarrierId, Program};

/// Parameters of one Ocean run.
///
/// # Examples
///
/// ```
/// use workloads::OceanConfig;
/// let programs = OceanConfig::paper().build(1000);
/// assert_eq!(programs.len(), 5); // root + 4 workers
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct OceanConfig {
    /// Worker processes (the paper uses 4).
    pub workers: u32,
    /// Timesteps (barrier intervals).
    pub iterations: u32,
    /// CPU time per worker per timestep.
    pub step_cpu: SimDuration,
    /// Working-set pages per worker (grid partition).
    pub ws_pages: u32,
}

impl OceanConfig {
    /// The §4.3 configuration: 4 workers, compute-bound, "kernel time
    /// only at the start-up phase", enough memory that paging is not a
    /// factor.
    pub fn paper() -> Self {
        OceanConfig {
            workers: 4,
            iterations: 50,
            step_cpu: SimDuration::from_millis(80),
            ws_pages: 400,
        }
    }

    /// Builds the program set: a root that forks the workers and waits,
    /// plus one program per worker. `barrier_base` namespaces this run's
    /// barriers; use a distinct base per Ocean instance.
    pub fn build(&self, barrier_base: u32) -> Vec<Arc<Program>> {
        let mut programs = Vec::with_capacity(self.workers as usize + 1);
        let mut workers = Vec::new();
        for w in 0..self.workers {
            let mut b = Program::builder(&format!("ocean-w{w}")).alloc(self.ws_pages.max(1));
            for it in 0..self.iterations {
                b = b
                    .compute(self.step_cpu, self.ws_pages)
                    .barrier(BarrierId(barrier_base + it), self.workers);
            }
            workers.push(b.build());
        }
        let mut root = Program::builder("ocean");
        for w in &workers {
            root = root.fork(Arc::clone(w));
        }
        programs.push(root.wait_children().build());
        programs.extend(workers);
        programs
    }

    /// Ideal solo runtime: iterations × step time (workers run in
    /// parallel).
    pub fn ideal_runtime(&self) -> SimDuration {
        self.step_cpu * self.iterations as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_sim::SimTime;
    use smp_kernel::{Kernel, MachineConfig};
    use spu_core::{Scheme, SpuId, SpuSet};

    #[test]
    fn ocean_runs_near_ideal_with_dedicated_cpus() {
        let cfg = MachineConfig::builder()
            .topology(4, 64, 1)
            .scheme(Scheme::Smp)
            .build()
            .unwrap();
        let mut k = Kernel::new(cfg, SpuSet::equal_users(1));
        let ocean = OceanConfig::paper();
        let progs = ocean.build(100);
        k.spawn_at(
            SpuId::user(0),
            progs[0].clone(),
            Some("ocean"),
            SimTime::ZERO,
        );
        let m = k.run(SimTime::from_secs(60));
        assert!(m.completed);
        let r = m.job("ocean").unwrap().response().unwrap();
        let ideal = ocean.ideal_runtime();
        assert!(r >= ideal, "{r} vs ideal {ideal}");
        assert!(
            r.as_secs_f64() < ideal.as_secs_f64() * 1.4,
            "{r} vs ideal {ideal}"
        );
    }

    #[test]
    fn ocean_suffers_when_sharing_cpus_with_load() {
        // 4 workers on 4 CPUs alone vs with 4 competing spinners: the
        // barriers amplify the slowdown beyond fair-share.
        let run = |with_load: bool| {
            let cfg = MachineConfig::builder()
                .topology(4, 64, 1)
                .scheme(Scheme::Smp)
                .build()
                .unwrap();
            let mut k = Kernel::new(cfg, SpuSet::equal_users(1));
            let progs = OceanConfig::paper().build(0);
            k.spawn_at(
                SpuId::user(0),
                progs[0].clone(),
                Some("ocean"),
                SimTime::ZERO,
            );
            if with_load {
                for i in 0..4 {
                    let spin = Program::builder("spin")
                        .compute(SimDuration::from_secs(3), 0)
                        .build();
                    k.spawn_at(SpuId::user(0), spin, Some(&format!("bg{i}")), SimTime::ZERO);
                }
            }
            let m = k.run(SimTime::from_secs(120));
            m.job("ocean").unwrap().response().unwrap().as_secs_f64()
        };
        let alone = run(false);
        let loaded = run(true);
        assert!(
            loaded > alone * 1.6,
            "interference should hurt: alone={alone} loaded={loaded}"
        );
    }

    #[test]
    fn build_produces_root_plus_workers() {
        let progs = OceanConfig::paper().build(0);
        assert_eq!(progs.len(), 5);
        assert_eq!(progs[0].name(), "ocean");
        assert_eq!(progs[1].name(), "ocean-w0");
    }
}
