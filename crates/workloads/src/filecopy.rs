//! The file-copy workload: `cp` of a large file through the buffer
//! cache.
//!
//! §4.5: "a process copying a large file (20 Mbytes). ... These are
//! mostly contiguous sectors as they are reading and writing large
//! files. There are multiple outstanding reads because of read-ahead by
//! the kernel. The buffer cache fills up causing writes to the disk."
//!
//! The copy alternates chunked reads of the source with chunked writes
//! of the destination; both files are laid out contiguously on the same
//! disk so the request stream is sequential — the stream that locks out
//! other SPUs under head-position-only scheduling.

use std::sync::Arc;

use smp_kernel::{Kernel, Program};

/// Creates a source and destination file of `bytes` on `disk` and builds
/// the copy program, reading and writing in `chunk`-byte steps.
///
/// # Panics
///
/// Panics if `bytes` or `chunk` is zero.
///
/// # Examples
///
/// ```no_run
/// use smp_kernel::{Kernel, MachineConfig};
/// use spu_core::SpuSet;
/// let mut k = Kernel::new(MachineConfig::builder().topology(2, 44, 1).build().unwrap(), SpuSet::equal_users(2));
/// let copy = workloads::copy_job(&mut k, 0, 20 * 1024 * 1024, 64 * 1024);
/// assert_eq!(copy.name(), "copy");
/// ```
pub fn copy_job(k: &mut Kernel, disk: usize, bytes: u64, chunk: u64) -> Arc<Program> {
    assert!(bytes > 0, "empty copy");
    assert!(chunk > 0, "zero chunk");
    let src = k.create_file(disk, bytes, 0);
    let dst = k.create_file(disk, bytes, 0);
    let mut b = Program::builder("copy");
    let mut off = 0;
    while off < bytes {
        let n = chunk.min(bytes - off);
        b = b.read(src, off, n).write(dst, off, n);
        off += n;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_sim::SimTime;
    use smp_kernel::MachineConfig;
    use spu_core::{Scheme, SpuId, SpuSet};

    #[test]
    fn copy_moves_every_block_through_the_disk() {
        let cfg = MachineConfig::builder()
            .topology(2, 44, 1)
            .scheme(Scheme::Smp)
            .seek_scale(0.5)
            .build()
            .unwrap();
        let mut k = Kernel::new(cfg, SpuSet::equal_users(1));
        let prog = copy_job(&mut k, 0, 5 * 1024 * 1024, 64 * 1024);
        k.spawn_at(SpuId::user(0), prog, Some("copy"), SimTime::ZERO);
        let m = k.run(SimTime::from_secs(300));
        assert!(m.completed);
        // All 1280 source blocks were read from disk (cold cache).
        assert!(m.cache.misses >= 1280, "misses {}", m.cache.misses);
        // The dirty watermark forced most destination blocks out to disk
        // (the tail can legitimately still be dirty in cache at exit).
        assert!(
            m.cache.flushed_blocks >= 900,
            "flushed {}",
            m.cache.flushed_blocks
        );
        // Sequential access: modest average seek.
        assert!(
            m.disks[0].mean_seek_ms() < 4.0,
            "{}",
            m.disks[0].mean_seek_ms()
        );
    }

    #[test]
    fn request_count_order_matches_paper() {
        // The paper's 20 MB copy makes ~1050 requests; ours should be in
        // the same order of magnitude (read-ahead batches reads, the
        // flusher batches writes).
        let cfg = MachineConfig::builder()
            .topology(2, 44, 1)
            .scheme(Scheme::Smp)
            .seek_scale(0.5)
            .build()
            .unwrap();
        let mut k = Kernel::new(cfg, SpuSet::equal_users(1));
        let prog = copy_job(&mut k, 0, 20 * 1024 * 1024, 64 * 1024);
        k.spawn_at(SpuId::user(0), prog, Some("copy"), SimTime::ZERO);
        let m = k.run(SimTime::from_secs(600));
        assert!(m.completed);
        let reqs = m.disks[0].total_requests();
        assert!((300..=3000).contains(&reqs), "requests {reqs}");
    }

    #[test]
    #[should_panic(expected = "empty copy")]
    fn zero_byte_copy_panics() {
        let cfg = MachineConfig::builder().topology(1, 16, 1).build().unwrap();
        let mut k = Kernel::new(cfg, SpuSet::equal_users(1));
        copy_job(&mut k, 0, 0, 4096);
    }
}
