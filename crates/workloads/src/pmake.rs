//! The pmake workload: a parallel make job.
//!
//! §4.2 and §4.5 describe pmake's signature precisely: forked parallel
//! compiles, "300 requests to the disk, and these are not all contiguous
//! as they access multiple files and have many repeated writes of
//! meta-data to a single sector", per-compile CPU bursts with a working
//! set, and a final link step. Each pmake job:
//!
//! 1. reads the makefile;
//! 2. runs `waves × parallelism` compile children, `parallelism` at a
//!    time — each reads a scattered source file, computes over a working
//!    set, writes an object file, and updates metadata;
//! 3. links: reads every object, computes, writes the binary.

use std::sync::Arc;

use event_sim::SimDuration;
use smp_kernel::{Kernel, Program};

/// Parameters of one pmake job.
///
/// # Examples
///
/// ```
/// use workloads::PmakeConfig;
/// let cfg = PmakeConfig::pmake8();
/// assert_eq!(cfg.parallelism, 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PmakeConfig {
    /// Compile processes run concurrently ("two parallel compiles each"
    /// for Pmake8, four for the memory-isolation workload; Table 1).
    pub parallelism: u32,
    /// Sequential waves of compiles (total compiles = waves ×
    /// parallelism).
    pub waves: u32,
    /// Source file size in bytes.
    pub src_bytes: u64,
    /// Small header files each compile also reads (pmake request
    /// streams are dominated by many small scattered reads).
    pub headers_per_compile: u32,
    /// Header file size in bytes.
    pub header_bytes: u64,
    /// Object file size in bytes.
    pub obj_bytes: u64,
    /// Allocation gap between source files in blocks — scatters the
    /// pmake's requests across the disk (§4.5: "not all contiguous").
    pub scatter_blocks: u64,
    /// CPU time per compile.
    pub compile_cpu: SimDuration,
    /// Working-set pages per compile (drives the memory experiments).
    pub compile_ws: u32,
    /// CPU time of the link step.
    pub link_cpu: SimDuration,
    /// Output binary size in bytes.
    pub bin_bytes: u64,
}

impl PmakeConfig {
    /// The Pmake8 workload's job: two parallel compiles (Table 1),
    /// modest working set — CPU-bound with real file traffic.
    pub fn pmake8() -> Self {
        PmakeConfig {
            parallelism: 2,
            waves: 2,
            src_bytes: 48 * 1024,
            headers_per_compile: 2,
            header_bytes: 8 * 1024,
            obj_bytes: 24 * 1024,
            scatter_blocks: 64,
            compile_cpu: SimDuration::from_millis(350),
            compile_ws: 200,
            link_cpu: SimDuration::from_millis(200),
            bin_bytes: 96 * 1024,
        }
    }

    /// The memory-isolation workload's job: four parallel compiles with
    /// a large working set so that *two* jobs in one SPU overflow the
    /// SPU's memory share on the 16 MB machine (§4.4).
    pub fn mem_iso() -> Self {
        PmakeConfig {
            parallelism: 4,
            waves: 2,
            src_bytes: 48 * 1024,
            headers_per_compile: 2,
            header_bytes: 8 * 1024,
            obj_bytes: 24 * 1024,
            scatter_blocks: 64,
            compile_cpu: SimDuration::from_millis(400),
            compile_ws: 330,
            link_cpu: SimDuration::from_millis(150),
            bin_bytes: 96 * 1024,
        }
    }

    /// The disk-bandwidth workload's pmake (§4.5): more, smaller compile
    /// steps so the job issues on the order of the paper's ~300 scattered
    /// disk requests while staying light on CPU.
    pub fn disk_bw() -> Self {
        PmakeConfig {
            parallelism: 2,
            waves: 10,
            src_bytes: 32 * 1024,
            headers_per_compile: 5,
            header_bytes: 8 * 1024,
            obj_bytes: 16 * 1024,
            scatter_blocks: 800,
            compile_cpu: SimDuration::from_millis(40),
            compile_ws: 0,
            link_cpu: SimDuration::from_millis(40),
            bin_bytes: 128 * 1024,
        }
    }

    /// Total compile count.
    pub fn total_compiles(&self) -> u32 {
        self.parallelism * self.waves
    }

    /// Creates the job's files on `disk` and builds its program.
    ///
    /// Each invocation creates a fresh file set, so every job has its own
    /// sources/objects like distinct users' build trees would.
    pub fn build(&self, k: &mut Kernel, disk: usize) -> Arc<Program> {
        let makefile = k.create_file(disk, 8 * 1024, self.scatter_blocks);
        let mut compiles = Vec::new();
        for _ in 0..self.total_compiles() {
            let src = k.create_file(disk, self.src_bytes, self.scatter_blocks);
            let obj = k.create_file(disk, self.obj_bytes, self.scatter_blocks);
            let mut cb = Program::builder("cc").read(src, 0, self.src_bytes);
            for _ in 0..self.headers_per_compile {
                let hdr = k.create_file(disk, self.header_bytes, self.scatter_blocks);
                cb = cb.read(hdr, 0, self.header_bytes);
            }
            let compile = cb
                .alloc(self.compile_ws.max(1))
                .compute(self.compile_cpu, self.compile_ws)
                .write(obj, 0, self.obj_bytes)
                .meta_write(obj)
                .build();
            compiles.push((compile, obj));
        }
        let binary = k.create_file(disk, self.bin_bytes, self.scatter_blocks);
        let mut b = Program::builder("pmake").read(makefile, 0, 8 * 1024);
        let mut idx = 0usize;
        for _ in 0..self.waves {
            for _ in 0..self.parallelism {
                b = b.fork(compiles[idx].0.clone());
                idx += 1;
            }
            b = b.wait_children().meta_write(makefile);
        }
        // Link: read every object, compute, write the binary.
        for (_, obj) in &compiles {
            b = b.read(*obj, 0, self.obj_bytes);
        }
        b = b
            .compute(self.link_cpu, 0)
            .write(binary, 0, self.bin_bytes)
            .meta_write(binary);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_sim::SimTime;
    use smp_kernel::MachineConfig;
    use spu_core::{Scheme, SpuId, SpuSet};

    #[test]
    fn pmake_job_runs_to_completion() {
        let cfg = MachineConfig::builder()
            .topology(2, 44, 1)
            .scheme(Scheme::PIso)
            .build()
            .unwrap();
        let mut k = Kernel::new(cfg, SpuSet::equal_users(1));
        let prog = PmakeConfig::pmake8().build(&mut k, 0);
        k.spawn_at(SpuId::user(0), prog, Some("pmake"), SimTime::ZERO);
        let m = k.run(SimTime::from_secs(60));
        assert!(m.completed);
        let r = m.job("pmake").unwrap().response().unwrap();
        // Two waves of two parallel 350 ms compiles on 2 CPUs plus I/O:
        // at least the serial compute path, at most a few seconds.
        assert!(r.as_secs_f64() > 0.7, "{r}");
        assert!(r.as_secs_f64() < 5.0, "{r}");
        // Real disk traffic happened.
        assert!(m.disks[0].total_requests() > 10);
    }

    #[test]
    fn pmake_parallelism_uses_multiple_cpus() {
        let run = |cpus: usize| {
            let cfg = MachineConfig::builder()
                .topology(cpus, 44, 1)
                .scheme(Scheme::Smp)
                .build()
                .unwrap();
            let mut k = Kernel::new(cfg, SpuSet::equal_users(1));
            let prog = PmakeConfig::pmake8().build(&mut k, 0);
            k.spawn_at(SpuId::user(0), prog, Some("p"), SimTime::ZERO);
            let m = k.run(SimTime::from_secs(60));
            assert!(m.completed);
            m.job("p").unwrap().response().unwrap().as_secs_f64()
        };
        let one = run(1);
        let two = run(2);
        assert!(two < one * 0.8, "parallel compiles: 1cpu={one} 2cpu={two}");
    }

    #[test]
    fn disk_bw_variant_issues_many_scattered_requests() {
        let cfg = MachineConfig::builder()
            .topology(2, 44, 1)
            .scheme(Scheme::Smp)
            .build()
            .unwrap();
        let mut k = Kernel::new(cfg, SpuSet::equal_users(1));
        let prog = PmakeConfig::disk_bw().build(&mut k, 0);
        k.spawn_at(SpuId::user(0), prog, Some("p"), SimTime::ZERO);
        let m = k.run(SimTime::from_secs(120));
        assert!(m.completed);
        let reqs = m.disks[0].total_requests();
        // The paper's pmake makes ~300 requests; ours should be within
        // the same order of magnitude.
        assert!((100..=900).contains(&reqs), "requests: {reqs}");
        // Scattered: mean seek is well above zero.
        assert!(
            m.disks[0].mean_seek_ms() > 0.5,
            "{}",
            m.disks[0].mean_seek_ms()
        );
    }

    #[test]
    fn total_compiles() {
        assert_eq!(PmakeConfig::pmake8().total_compiles(), 4);
        assert_eq!(PmakeConfig::mem_iso().total_compiles(), 8);
    }
}
