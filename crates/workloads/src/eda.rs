//! Flashlite and VCS: compute-bound single-process simulators.
//!
//! §4.3 loads one SPU with "three copies of VCS and three copies of
//! Flashlite" — long-running EDA/architecture simulators with "kernel
//! time only at the start-up phase". We model each as a start-up file
//! read followed by a long CPU burst over a resident working set.

use std::sync::Arc;

use event_sim::SimDuration;
use smp_kernel::{Kernel, Program};

/// Builds one Flashlite job (the FLASH machine simulator): ~9 s of CPU
/// over a ~1.2 MB working set after reading its input image.
///
/// # Examples
///
/// ```no_run
/// use smp_kernel::{Kernel, MachineConfig};
/// use spu_core::SpuSet;
/// let mut k = Kernel::new(MachineConfig::builder().topology(4, 64, 1).build().unwrap(), SpuSet::equal_users(2));
/// let prog = workloads::flashlite(&mut k, 0);
/// assert_eq!(prog.name(), "flashlite");
/// ```
pub fn flashlite(k: &mut Kernel, disk: usize) -> Arc<Program> {
    flashlite_with(k, disk, SimDuration::from_millis(9000))
}

/// [`flashlite`] with an explicit simulation length (for scaled-down
/// experiment variants).
pub fn flashlite_with(k: &mut Kernel, disk: usize, cpu: SimDuration) -> Arc<Program> {
    let image = k.create_file(disk, 256 * 1024, 16);
    Program::builder("flashlite")
        .read(image, 0, 256 * 1024)
        .alloc(300)
        .compute(cpu, 300)
        .build()
}

/// Builds one VCS job (the Verilog compiled simulator): ~7 s of CPU
/// over a ~0.8 MB working set after reading its design.
pub fn vcs(k: &mut Kernel, disk: usize) -> Arc<Program> {
    vcs_with(k, disk, SimDuration::from_millis(7000))
}

/// [`vcs`] with an explicit simulation length.
pub fn vcs_with(k: &mut Kernel, disk: usize, cpu: SimDuration) -> Arc<Program> {
    let design = k.create_file(disk, 192 * 1024, 16);
    Program::builder("vcs")
        .read(design, 0, 192 * 1024)
        .alloc(200)
        .compute(cpu, 200)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_sim::SimTime;
    use smp_kernel::MachineConfig;
    use spu_core::{Scheme, SpuId, SpuSet};

    #[test]
    fn eda_jobs_are_compute_dominated() {
        let cfg = MachineConfig::builder()
            .topology(2, 64, 1)
            .scheme(Scheme::Smp)
            .build()
            .unwrap();
        let mut k = Kernel::new(cfg, SpuSet::equal_users(1));
        let f = flashlite(&mut k, 0);
        let v = vcs(&mut k, 0);
        k.spawn_at(SpuId::user(0), f, Some("flashlite"), SimTime::ZERO);
        k.spawn_at(SpuId::user(0), v, Some("vcs"), SimTime::ZERO);
        let m = k.run(SimTime::from_secs(30));
        assert!(m.completed);
        let rf = m
            .job("flashlite")
            .unwrap()
            .response()
            .unwrap()
            .as_secs_f64();
        let rv = m.job("vcs").unwrap().response().unwrap().as_secs_f64();
        // Each runs on its own CPU: response ≈ compute time + small I/O.
        assert!((9.0..10.5).contains(&rf), "flashlite {rf}");
        assert!((7.0..8.4).contains(&rv), "vcs {rv}");
        assert!(rf > rv, "flashlite is the longer job");
    }
}
