//! An OLTP-style database workload (extension).
//!
//! The paper's introduction motivates SPUs with compute *servers* "with
//! implicit or explicit contracts between users" — the canonical 1998
//! consolidation story is a transaction-processing database sharing a
//! box with batch jobs. This workload models the database side: a
//! stream of small transactions, each reading a few random pages of a
//! large table file (mostly buffer-cache misses), doing a little CPU
//! work, and appending a sequential log record with a synchronous
//! metadata update (the commit).
//!
//! Its sensitivity profile is the mirror image of the batch scan it is
//! typically consolidated with: latency lives and dies on disk queueing
//! (Table 3's lockout effect) and on wake-up latency (the §3.1 IPI
//! discussion).

use std::sync::Arc;

use event_sim::{SimDuration, SplitMix64};
use smp_kernel::{Kernel, Program, PAGE_SIZE};

/// Parameters of an OLTP run.
///
/// # Examples
///
/// ```
/// use workloads::OltpConfig;
/// let cfg = OltpConfig::default();
/// assert!(cfg.transactions > 0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct OltpConfig {
    /// Transactions to execute.
    pub transactions: u32,
    /// Table size in bytes (reads are scattered across it).
    pub table_bytes: u64,
    /// Pages read per transaction.
    pub reads_per_txn: u32,
    /// CPU work per transaction.
    pub txn_cpu: SimDuration,
    /// Log record size per transaction (sequential appends).
    pub log_record_bytes: u64,
    /// RNG seed for the access pattern (runs are deterministic per seed).
    pub seed: u64,
}

impl Default for OltpConfig {
    fn default() -> Self {
        OltpConfig {
            transactions: 120,
            table_bytes: 24 * 1024 * 1024,
            reads_per_txn: 3,
            txn_cpu: SimDuration::from_millis(2),
            log_record_bytes: 4096,
            seed: 0x517c0de,
        }
    }
}

impl OltpConfig {
    /// Creates the table and log files on `disk` and builds the program.
    pub fn build(&self, k: &mut Kernel, disk: usize) -> Arc<Program> {
        let table = k.create_file(disk, self.table_bytes, 0);
        let log = k.create_file(disk, self.transactions as u64 * self.log_record_bytes, 0);
        let table_pages = self.table_bytes / PAGE_SIZE;
        let mut rng = SplitMix64::new(self.seed);
        let mut b = Program::builder("oltp");
        for t in 0..self.transactions {
            for _ in 0..self.reads_per_txn {
                let page = rng.next_below(table_pages);
                b = b.read(table, page * PAGE_SIZE, PAGE_SIZE);
            }
            b = b
                .compute(self.txn_cpu, 0)
                .write(log, t as u64 * self.log_record_bytes, self.log_record_bytes)
                .meta_write(log);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_sim::SimTime;
    use smp_kernel::MachineConfig;
    use spu_core::{Scheme, SpuId, SpuSet};

    #[test]
    fn oltp_is_disk_latency_bound() {
        let cfg = MachineConfig::builder()
            .topology(2, 44, 1)
            .scheme(Scheme::PIso)
            .seek_scale(0.5)
            .build()
            .unwrap();
        let mut k = Kernel::new(cfg, SpuSet::equal_users(1));
        let prog = OltpConfig {
            transactions: 50,
            ..OltpConfig::default()
        }
        .build(&mut k, 0);
        k.spawn_at(SpuId::user(0), prog, Some("oltp"), SimTime::ZERO);
        let m = k.run(SimTime::from_secs(120));
        assert!(m.completed);
        let r = m.job("oltp").unwrap().response().unwrap().as_secs_f64();
        // 50 txns × (3 scattered reads + commit) dominated by disk time:
        // far more than the 100 ms of pure CPU, far less than a minute.
        assert!(r > 0.5, "{r}");
        assert!(r < 30.0, "{r}");
        // The scattered reads mostly miss.
        assert!(m.cache.misses > 100, "misses {}", m.cache.misses);
    }

    #[test]
    fn access_pattern_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let cfg = MachineConfig::builder()
                .topology(1, 44, 1)
                .scheme(Scheme::Smp)
                .build()
                .unwrap();
            let mut k = Kernel::new(cfg, SpuSet::equal_users(1));
            let prog = OltpConfig {
                transactions: 20,
                seed,
                ..OltpConfig::default()
            }
            .build(&mut k, 0);
            k.spawn_at(SpuId::user(0), prog, Some("o"), SimTime::ZERO);
            let m = k.run(SimTime::from_secs(120));
            assert!(m.completed);
            m.end_time
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
