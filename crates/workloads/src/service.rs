//! An open-loop request-serving workload (extension).
//!
//! The paper's workloads are closed-loop programs: a fixed process
//! population whose offered load self-throttles when the machine slows
//! down. A consolidated *service* behaves differently — its clients
//! live elsewhere and keep sending whether or not the server keeps up.
//! This module turns an [`ArrivalPlan`] into that regime: one short
//! request program per arrival instant, each carrying a deadline, fed
//! to the kernel through [`Kernel::spawn_request_at`] so per-SPU
//! admission control and load shedding can act on the stream.
//!
//! A request is a few milliseconds of CPU plus an optional scattered
//! read against a shared table file — small enough that thousands fit
//! in a run, real enough to exercise CPU scheduling, the buffer cache,
//! and the disk under overload.

use std::sync::Arc;

use event_sim::{ArrivalPlan, SimDuration, SplitMix64};
use smp_kernel::{Kernel, Pid, Program, PAGE_SIZE};
use spu_core::SpuId;

/// Parameters of one request class in an open-loop service stream.
///
/// # Examples
///
/// ```
/// use workloads::ServiceConfig;
/// let cfg = ServiceConfig::default();
/// assert!(cfg.deadline > event_sim::SimDuration::ZERO);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceConfig {
    /// CPU work per request.
    pub cpu_burst: SimDuration,
    /// Bytes read per request from the shared table file (0 disables
    /// the read entirely).
    pub read_bytes: u64,
    /// Size of the shared table file, in pages. Small tables stay
    /// buffer-cache-hot after warm-up; large ones keep missing.
    pub table_pages: u64,
    /// Per-request deadline, measured from the arrival instant. Used
    /// both for SLO scoring and by deadline-aware shedding.
    pub deadline: SimDuration,
    /// RNG seed for the read offsets (deterministic per seed).
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cpu_burst: SimDuration::from_millis(4),
            read_bytes: PAGE_SIZE,
            table_pages: 64,
            deadline: SimDuration::from_millis(30),
            seed: 0x5e41ce,
        }
    }
}

impl ServiceConfig {
    /// Creates the shared table file on `disk` and spawns one request
    /// per instant in `plan`, all labelled `label`, onto `spu`. Returns
    /// the spawned pids in arrival order.
    ///
    /// Each request reads a seeded-random page of the table (when
    /// `read_bytes > 0`) and then burns `cpu_burst`; the read comes
    /// first so a cold request blocks early and the CPU burst runs
    /// against a warm cache entry.
    pub fn spawn_stream(
        &self,
        k: &mut Kernel,
        spu: SpuId,
        disk: usize,
        plan: &ArrivalPlan,
        label: &str,
    ) -> Vec<Pid> {
        let table = if self.read_bytes > 0 {
            Some(k.create_file(disk, self.table_pages.max(1) * PAGE_SIZE, 0))
        } else {
            None
        };
        let mut rng = SplitMix64::new(self.seed);
        let mut pids = Vec::with_capacity(plan.len());
        for &at in plan.times() {
            let mut b = Program::builder("request");
            if let Some(table) = table {
                let page = rng.next_below(self.table_pages.max(1));
                b = b.read(table, page * PAGE_SIZE, self.read_bytes);
            }
            let prog: Arc<Program> = b.compute(self.cpu_burst, 0).build();
            pids.push(k.spawn_request_at(spu, prog, label, at, self.deadline));
        }
        pids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_sim::{ArrivalProcess, SimTime};
    use smp_kernel::MachineConfig;
    use spu_core::{Scheme, SpuSet};

    fn plan(rate: f64) -> ArrivalPlan {
        ArrivalProcess::Poisson { rate_per_sec: rate }.generate(9, SimTime::from_secs(2))
    }

    #[test]
    fn stream_completes_and_scores_slo() {
        let cfg = MachineConfig::builder()
            .topology(2, 44, 1)
            .scheme(Scheme::PIso)
            .build()
            .unwrap();
        let mut k = Kernel::new(cfg, SpuSet::equal_users(1));
        k.enable_slo(SimDuration::from_millis(30));
        let svc = ServiceConfig::default();
        let pids = svc.spawn_stream(&mut k, SpuId::user(0), 0, &plan(40.0), "svc");
        assert!(!pids.is_empty());
        let m = k.run(SimTime::from_secs(30));
        assert!(m.completed);
        let row = m.slo().spu(SpuId::user(0)).expect("slo row");
        assert_eq!(row.jobs as usize, pids.len());
        assert!(row.p99 > 0.0);
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let cfg = MachineConfig::builder()
                .topology(1, 44, 1)
                .scheme(Scheme::Smp)
                .build()
                .unwrap();
            let mut k = Kernel::new(cfg, SpuSet::equal_users(1));
            let svc = ServiceConfig {
                seed,
                ..ServiceConfig::default()
            };
            svc.spawn_stream(&mut k, SpuId::user(0), 0, &plan(60.0), "svc");
            let m = k.run(SimTime::from_secs(30));
            assert!(m.completed);
            m.end_time
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn zero_read_bytes_skips_the_table() {
        let cfg = MachineConfig::builder()
            .topology(1, 44, 1)
            .scheme(Scheme::Smp)
            .build()
            .unwrap();
        let mut k = Kernel::new(cfg, SpuSet::equal_users(1));
        let svc = ServiceConfig {
            read_bytes: 0,
            ..ServiceConfig::default()
        };
        svc.spawn_stream(&mut k, SpuId::user(0), 0, &plan(20.0), "svc");
        let m = k.run(SimTime::from_secs(10));
        assert!(m.completed);
        assert_eq!(m.cache.misses, 0, "no file should ever be read");
    }
}
