//! Synthetic workloads matching the paper's applications (Table 1).
//!
//! The paper drives its evaluation with four workloads built from five
//! applications; this crate reproduces each one's *resource signature* —
//! the CPU, memory, and disk demands that drive the scheduling results —
//! as [`smp_kernel::Program`] scripts:
//!
//! * [`pmake`] — parallel make: forked compile processes mixing CPU,
//!   file I/O against many scattered small files, repeated metadata
//!   writes, and a working set per compile (Pmake8 and the
//!   memory-isolation workload).
//! * [`ocean`] — the SPLASH-2 Ocean simulation: a 4-process
//!   barrier-synchronized compute-bound parallel application.
//! * [`eda`] — Flashlite and VCS: long-running single-process
//!   compute-bound simulators.
//! * [`filecopy`] — `cp`-style sequential copy of a large file through
//!   the buffer cache (the disk-bandwidth workloads of §4.5).
//! * [`oltp`] — a transaction-processing stream (extension): the
//!   latency-sensitive tenant in the server-consolidation scenario the
//!   paper's introduction motivates.

pub mod eda;
pub mod filecopy;
pub mod ocean;
pub mod oltp;
pub mod pmake;
pub mod service;

pub use eda::{flashlite, flashlite_with, vcs, vcs_with};
pub use filecopy::copy_job;
pub use ocean::OceanConfig;
pub use oltp::OltpConfig;
pub use pmake::PmakeConfig;
pub use service::ServiceConfig;
