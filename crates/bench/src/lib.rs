//! Criterion benchmark harness for the performance-isolation
//! reproduction.
//!
//! One bench target per paper artefact:
//!
//! * `pmake8` — Figures 2 and 3 (§4.2)
//! * `cpu_iso` — Figure 5 (§4.3)
//! * `mem_iso` — Figure 7 (§4.4)
//! * `disk_bw` — Tables 3 and 4 (§4.5)
//! * `ablation` — the §3.2/§3.3/§3.4 design-choice sweeps
//! * `micro` — substrate micro-benchmarks (event queue, disk model,
//!   scheduler picks)
//!
//! Each experiment bench prints the paper-shaped table once before
//! timing, so `cargo bench` regenerates every figure and table while
//! measuring the harness cost at `Quick` scale.

/// Re-exported experiment scale for bench configuration.
pub use experiments::Scale;
