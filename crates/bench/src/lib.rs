//! Criterion benchmark harness for the performance-isolation
//! reproduction.
//!
//! One bench target per paper artefact:
//!
//! * `pmake8` — Figures 2 and 3 (§4.2)
//! * `cpu_iso` — Figure 5 (§4.3)
//! * `mem_iso` — Figure 7 (§4.4)
//! * `disk_bw` — Tables 3 and 4 (§4.5)
//! * `ablation` — the §3.2/§3.3/§3.4 design-choice sweeps
//! * `micro` — substrate micro-benchmarks (event queue, disk model,
//!   scheduler picks)
//!
//! Each experiment bench prints the paper-shaped table once before
//! timing, so `cargo bench` regenerates every figure and table while
//! measuring the harness cost at `Quick` scale.

/// Re-exported experiment scale for bench configuration.
pub use experiments::Scale;

/// Micro-benchmark targets shared between the `micro` bench (full
/// substrate coverage) and the `core` bench (the tracked
/// `BENCH_core.json` baseline): the three kernel hot paths this repo
/// optimises — event-queue churn, scheduler picks, and the page-fault
/// path.
pub mod micro_targets {
    use criterion::{black_box, Criterion};
    use event_sim::{EventQueue, SimDuration, SimTime};
    use smp_kernel::{Kernel, MachineConfig, Program};
    use spu_core::{Scheme, SpuId, SpuSet};

    /// Timing-wheel churn: 1k schedules followed by a full drain.
    pub fn bench_event_queue(c: &mut Criterion) {
        c.bench_function("event_queue/push_pop_1k", |b| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..1000u64 {
                    q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
                }
                let mut sum = 0u64;
                while let Some((_, v)) = q.pop() {
                    sum += v;
                }
                black_box(sum)
            })
        });
    }

    /// Scheduler pick-next under load: 16 CPU-bound processes time-slice
    /// on 2 CPUs, so the run is dominated by dispatch/preempt decisions.
    pub fn bench_scheduler_pick(c: &mut Criterion) {
        c.bench_function("sched/pick_under_load", |b| {
            b.iter(|| {
                let cfg = MachineConfig::builder()
                    .topology(2, 32, 1)
                    .scheme(Scheme::PIso)
                    .build()
                    .unwrap();
                let mut k = Kernel::new(cfg, SpuSet::equal_users(2));
                let spin = Program::builder("spin")
                    .compute(SimDuration::from_millis(40), 0)
                    .build();
                for i in 0..16u32 {
                    k.spawn_at(SpuId::user(i % 2), spin.clone(), None, SimTime::ZERO);
                }
                black_box(k.run(SimTime::from_secs(10)).end_time)
            })
        });
    }

    /// Scheduler picks at machine scale: 512 CPUs and 1024 SPUs
    /// time-sharing two-to-a-CPU, so the run is dominated by per-CPU
    /// queue picks plus the shared-CPU rotor at the largest supported
    /// topology. Guards the tentpole claim that dispatch cost stays
    /// O(1) in machine size — a scan-all-queues regression moves this
    /// micro by orders of magnitude.
    pub fn bench_scheduler_pick_512(c: &mut Criterion) {
        c.bench_function("sched/pick_at_512_cpus", |b| {
            b.iter(|| {
                let (cfg, set) = MachineConfig::builder()
                    .topology(512, 3072, 1)
                    .scheme(Scheme::PIso)
                    .spus(1024, 1)
                    .build_with_spus()
                    .unwrap();
                let mut k = Kernel::new(cfg, set);
                let spin = Program::builder("spin")
                    .compute(SimDuration::from_millis(40), 0)
                    .build();
                for s in 0..1024u32 {
                    for _ in 0..(s % 2 + 1) {
                        k.spawn_at(SpuId::user(s), spin.clone(), None, SimTime::ZERO);
                    }
                }
                black_box(k.run(SimTime::from_secs(30)).end_time)
            })
        });
    }

    /// The page-fault path under thrash: a working-set sweep larger than
    /// memory on a 1-CPU machine, so the run is dominated by
    /// `acquire_frame`/victim selection/swap traffic.
    pub fn bench_fault_path(c: &mut Criterion) {
        c.bench_function("vm/fault_thrash", |b| {
            b.iter(|| {
                let cfg = MachineConfig::builder()
                    .topology(1, 8, 1)
                    .scheme(Scheme::Smp)
                    .build()
                    .unwrap();
                let mut k = Kernel::new(cfg, SpuSet::equal_users(1));
                // 8 MB is 2048 frames; a 2500-page sweep (repeated)
                // evicts continuously.
                let sweep = Program::builder("sweep")
                    .alloc(2500)
                    .compute(SimDuration::from_millis(5), 2500)
                    .compute(SimDuration::from_millis(5), 2500)
                    .build();
                k.spawn_at(SpuId::user(0), sweep, Some("sweep"), SimTime::ZERO);
                black_box(k.run(SimTime::from_secs(60)).end_time)
            })
        });
    }

    /// The resident hit path: a working set that *fits* in memory swept
    /// repeatedly. After the first zero-fill pass every round is pure
    /// resident touches — the slab-slice walk plus frame-stamp updates,
    /// with no eviction, no I/O, and no map lookups. Guards the arena
    /// page-table fast path in isolation from swap traffic.
    pub fn bench_fault_resident(c: &mut Criterion) {
        c.bench_function("vm/fault_resident", |b| {
            b.iter(|| {
                let cfg = MachineConfig::builder()
                    .topology(1, 8, 1)
                    .scheme(Scheme::Smp)
                    .build()
                    .unwrap();
                let mut k = Kernel::new(cfg, SpuSet::equal_users(1));
                // 1500 pages of 2048 frames: never evicts.
                let sweep = Program::builder("resident")
                    .alloc(1500)
                    .compute(SimDuration::from_millis(2), 1500)
                    .compute(SimDuration::from_millis(2), 1500)
                    .compute(SimDuration::from_millis(2), 1500)
                    .compute(SimDuration::from_millis(2), 1500)
                    .build();
                k.spawn_at(SpuId::user(0), sweep, Some("resident"), SimTime::ZERO);
                black_box(k.run(SimTime::from_secs(60)).end_time)
            })
        });
    }

    /// The coalesced swap-in drain: one oversized sweep pushes the tail
    /// of the working set to swap, and the second sweep faults it back
    /// in ascending page order — contiguous swap slots coalesce into
    /// multi-page reads whose completions land on the same tick and
    /// drain through the event queue's batched `pop_run` path.
    pub fn bench_swapin_batch(c: &mut Criterion) {
        c.bench_function("vm/swapin_batch", |b| {
            b.iter(|| {
                let cfg = MachineConfig::builder()
                    .topology(1, 8, 1)
                    .scheme(Scheme::Smp)
                    .build()
                    .unwrap();
                let mut k = Kernel::new(cfg, SpuSet::equal_users(1));
                // 3000 pages of 2048 frames: the first sweep swaps out
                // ~1000 pages, the second swaps them back in.
                let sweep = Program::builder("swapin")
                    .alloc(3000)
                    .compute(SimDuration::from_millis(2), 3000)
                    .compute(SimDuration::from_millis(2), 3000)
                    .build();
                k.spawn_at(SpuId::user(0), sweep, Some("swapin"), SimTime::ZERO);
                black_box(k.run(SimTime::from_secs(60)).end_time)
            })
        });
    }
}
