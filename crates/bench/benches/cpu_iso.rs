//! Bench for the CPU-isolation experiment (Figure 5, §4.3).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::cpu_iso;
use experiments::Scale;
use spu_core::Scheme;

fn bench_cpu_iso(c: &mut Criterion) {
    let result = cpu_iso::run(Scale::Quick);
    eprintln!("\n=== CPU isolation (quick scale) ===\n{}", result.format());

    let mut group = c.benchmark_group("cpu_iso");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| cpu_iso::run_one(scheme, Scale::Quick))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cpu_iso);
criterion_main!(benches);
