//! The tracked performance baseline: hot-path micro-benchmarks plus a
//! full `paper_tables --quick`-equivalent end-to-end sweep, serialized
//! to `BENCH_core.json` at the repository root.
//!
//! Run with:
//!
//! ```text
//! cargo bench --bench core
//! ```
//!
//! Before overwriting the baseline the bench prints the end-to-end
//! speedup of this tree against the committed numbers, so a `cargo
//! bench --bench core` in CI (or before a perf PR) immediately shows
//! the trajectory. Wall-clock numbers are machine-dependent: compare
//! ratios from the same machine, not absolute values across machines.
//!
//! Set `BENCH_CORE_OUT=/path/file.json` to redirect the output (CI
//! uploads the artifact from a scratch path without dirtying the
//! checkout).

use std::time::Instant;

use bench::micro_targets;
use criterion::{take_measurements, Criterion, Measurement};
use experiments::lock_leakage;
use experiments::sweep::{self, SweepOptions, SweepOutput};
use experiments::Scale;

fn main() {
    if !criterion::running_as_bench() {
        eprintln!("benchmarks skipped (run with `cargo bench`)");
        return;
    }

    // The three hot-path micro targets, shared with the `micro` bench.
    let mut c = Criterion::default();
    micro_targets::bench_event_queue(&mut c);
    micro_targets::bench_scheduler_pick(&mut c);
    micro_targets::bench_fault_path(&mut c);
    let micro = take_measurements();

    // End-to-end: every quick-scale scenario, uncached and serial, the
    // same cells `paper_tables --quick --no-cache` runs.
    let start = Instant::now();
    let outputs = sweep::run_pool(&sweep::all_scenarios(Scale::Quick), &SweepOptions::new());
    let total_s = start.elapsed().as_secs_f64();
    let cells: usize = outputs.iter().map(|o| o.stats.len()).sum();
    eprintln!("end_to_end/quick_sweep: {total_s:.3} s wall ({cells} cells)");

    // Attribution overhead: the same kernel bare vs fully instrumented
    // (interference matrix, SLO tracker, trace, sampling, all exports
    // rendered). The ratio is what a tracker or exporter regression
    // moves.
    let start = Instant::now();
    let baseline = lock_leakage::run_baseline(Scale::Quick);
    let bare_s = start.elapsed().as_secs_f64();
    assert!(baseline.completed, "attribution baseline run hit its cap");
    let start = Instant::now();
    let inst = lock_leakage::run_instrumented(Scale::Quick);
    let instrumented_s = start.elapsed().as_secs_f64();
    assert!(!inst.matrix_json.is_empty());
    eprintln!(
        "attribution/overhead: bare {bare_s:.3} s, instrumented {instrumented_s:.3} s ({:.2}x)",
        instrumented_s / bare_s
    );

    // The committed baseline is always the comparison point, even when
    // the output is redirected (CI writes to a scratch path).
    let committed = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json");
    let out_path = std::env::var("BENCH_CORE_OUT").unwrap_or_else(|_| committed.into());
    if let Some(baseline_s) = read_baseline_total(committed) {
        eprintln!(
            "speedup vs committed baseline: {:.2}x (baseline {baseline_s:.3} s)",
            baseline_s / total_s
        );
    }

    let json = render_json(&micro, &outputs, total_s, bare_s, instrumented_s);
    std::fs::write(&out_path, json).expect("write BENCH_core.json");
    eprintln!("wrote {out_path}");
}

/// Extracts `end_to_end.total_wall_s` from an existing baseline file.
/// A hand-rolled scan (no JSON dependency in this workspace): the file
/// is machine-written by this bench, so the key appears exactly once.
fn read_baseline_total(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let tail = text.split("\"total_wall_s\":").nth(1)?;
    let num: String = tail
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}

fn render_json(
    micro: &[Measurement],
    outputs: &[SweepOutput],
    total_s: f64,
    bare_s: f64,
    instrumented_s: f64,
) -> String {
    use std::fmt::Write;
    let mut j = String::new();
    j.push_str("{\n  \"schema\": \"bench-core-v2\",\n  \"scale\": \"quick\",\n");
    let _ = writeln!(
        j,
        "  \"attribution\": {{\"bare_wall_s\": {bare_s:.6}, \"instrumented_wall_s\": {instrumented_s:.6}, \"overhead_ratio\": {:.4}}},",
        instrumented_s / bare_s
    );
    j.push_str("  \"micro\": {\n");
    for (i, m) in micro.iter().enumerate() {
        let _ = writeln!(
            j,
            "    \"{}\": {{\"median_ns\": {}, \"min_ns\": {}, \"samples\": {}}}{}",
            m.name,
            m.median_ns,
            m.min_ns,
            m.samples,
            if i + 1 < micro.len() { "," } else { "" }
        );
    }
    j.push_str("  },\n  \"end_to_end\": {\n");
    let _ = writeln!(j, "    \"total_wall_s\": {total_s:.6},");
    j.push_str("    \"scenarios\": [\n");
    for (si, out) in outputs.iter().enumerate() {
        let wall_us: u128 = out.stats.iter().map(|s| s.wall.as_micros()).sum();
        let _ = write!(
            j,
            "      {{\"scenario\": \"{}\", \"wall_us\": {wall_us}, \"cells\": [",
            out.name
        );
        for (ci, s) in out.stats.iter().enumerate() {
            let _ = write!(
                j,
                "{{\"cell\": \"{}\", \"wall_us\": {}}}{}",
                s.key,
                s.wall.as_micros(),
                if ci + 1 < out.stats.len() { ", " } else { "" }
            );
        }
        let _ = writeln!(j, "]}}{}", if si + 1 < outputs.len() { "," } else { "" });
    }
    j.push_str("    ]\n  }\n}\n");
    j
}
