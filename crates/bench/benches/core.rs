//! The tracked performance baseline: hot-path micro-benchmarks plus a
//! full `paper_tables --quick`-equivalent end-to-end sweep, serialized
//! to `BENCH_core.json` at the repository root.
//!
//! Run with:
//!
//! ```text
//! cargo bench --bench core
//! ```
//!
//! Before overwriting the baseline the bench prints the end-to-end
//! speedup of this tree against the committed numbers, so a `cargo
//! bench --bench core` in CI (or before a perf PR) immediately shows
//! the trajectory. Wall-clock numbers are machine-dependent: compare
//! ratios from the same machine, not absolute values across machines.
//!
//! Set `BENCH_CORE_OUT=/path/file.json` to redirect the output (CI
//! uploads the artifact from a scratch path without dirtying the
//! checkout).

use std::time::Instant;

use bench::micro_targets;
use criterion::{take_measurements, Criterion, Measurement};
use experiments::lock_leakage;
use experiments::sweep::{self, SweepOptions, SweepOutput};
use experiments::Scale;

fn main() {
    if !criterion::running_as_bench() {
        eprintln!("benchmarks skipped (run with `cargo bench`)");
        return;
    }

    // The hot-path micro targets, shared with the `micro` bench.
    let mut c = Criterion::default();
    micro_targets::bench_event_queue(&mut c);
    micro_targets::bench_scheduler_pick(&mut c);
    micro_targets::bench_scheduler_pick_512(&mut c);
    micro_targets::bench_fault_path(&mut c);
    micro_targets::bench_fault_resident(&mut c);
    micro_targets::bench_swapin_batch(&mut c);
    let micro = take_measurements();

    // End-to-end: every quick-scale scenario, uncached and serial — the
    // `paper_tables --quick --no-cache` cells, except that the overload
    // matrix runs at its shrunk bench-tier horizon (schema v3).
    let start = Instant::now();
    let outputs = sweep::run_pool(&sweep::bench_scenarios(Scale::Quick), &SweepOptions::new());
    let total_s = start.elapsed().as_secs_f64();
    let cells: usize = outputs.iter().map(|o| o.stats.len()).sum();
    eprintln!("end_to_end/quick_sweep: {total_s:.3} s wall ({cells} cells)");

    // Attribution overhead: the same kernel bare vs fully instrumented
    // (interference matrix, SLO tracker, trace, sampling, all exports
    // rendered). The ratio is what a tracker or exporter regression
    // moves.
    let start = Instant::now();
    let baseline = lock_leakage::run_baseline(Scale::Quick);
    let bare_s = start.elapsed().as_secs_f64();
    assert!(baseline.completed, "attribution baseline run hit its cap");
    let start = Instant::now();
    let inst = lock_leakage::run_instrumented(Scale::Quick);
    let instrumented_s = start.elapsed().as_secs_f64();
    assert!(!inst.matrix_json.is_empty());
    eprintln!(
        "attribution/overhead: bare {bare_s:.3} s, instrumented {instrumented_s:.3} s ({:.2}x)",
        instrumented_s / bare_s
    );

    // The committed baseline is always the comparison point, even when
    // the output is redirected (CI writes to a scratch path). Snapshot
    // it before writing: without `BENCH_CORE_OUT` the write below
    // replaces the very file the ratchet compares against.
    let committed = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json");
    let baseline_text = std::fs::read_to_string(committed).ok();
    let out_path = std::env::var("BENCH_CORE_OUT").unwrap_or_else(|_| committed.into());
    if let Some(baseline_s) = baseline_text.as_deref().and_then(baseline_total) {
        eprintln!(
            "speedup vs committed baseline: {:.2}x (baseline {baseline_s:.3} s)",
            baseline_s / total_s
        );
    }

    let json = render_json(&micro, &outputs, total_s, bare_s, instrumented_s);
    std::fs::write(&out_path, json).expect("write BENCH_core.json");
    eprintln!("wrote {out_path}");

    // Per-micro before/after table against the committed baseline,
    // printed for the log and (with `BENCH_DELTA_OUT` set) written for
    // CI to upload next to the JSON.
    let delta = delta_table(baseline_text.as_deref(), &micro, total_s);
    eprint!("{delta}");
    if let Ok(path) = std::env::var("BENCH_DELTA_OUT") {
        std::fs::write(&path, &delta).expect("write delta table");
        eprintln!("wrote {path}");
    }

    ratchet(baseline_text.as_deref(), &micro, total_s);
}

/// Renders the per-micro before/after table: committed baseline median
/// vs this run, with the ratio. New targets (no committed number yet)
/// and the end-to-end sweep total are included.
fn delta_table(baseline_text: Option<&str>, micro: &[Measurement], total_s: f64) -> String {
    use std::fmt::Write;
    let mut t = String::from("\nbench delta vs committed baseline\n");
    let _ = writeln!(
        t,
        "{:<28} {:>14} {:>14} {:>8}",
        "target", "baseline ns", "current ns", "ratio"
    );
    for m in micro {
        match baseline_text.and_then(|text| baseline_median_ns(text, &m.name)) {
            Some(base) => {
                let _ = writeln!(
                    t,
                    "{:<28} {:>14} {:>14} {:>7.2}x",
                    m.name,
                    base,
                    m.median_ns,
                    m.median_ns as f64 / base as f64
                );
            }
            None => {
                let _ = writeln!(
                    t,
                    "{:<28} {:>14} {:>14} {:>8}",
                    m.name, "(new)", m.median_ns, "-"
                );
            }
        }
    }
    match baseline_text.and_then(baseline_total) {
        Some(base_s) => {
            let _ = writeln!(
                t,
                "{:<28} {:>12.3} s {:>12.3} s {:>7.2}x",
                "end_to_end/quick_sweep",
                base_s,
                total_s,
                total_s / base_s
            );
        }
        None => {
            let _ = writeln!(
                t,
                "{:<28} {:>14} {:>12.3} s {:>8}",
                "end_to_end/quick_sweep", "(new)", total_s, "-"
            );
        }
    }
    t
}

/// Regression tolerance for the micro medians. Wide because shared CI
/// runners are noisy; a real algorithmic regression (O(1) pick turning
/// into a queue scan) lands far outside it.
const MICRO_TOLERANCE: f64 = 2.0;
/// Regression tolerance for the end-to-end quick sweep, which averages
/// over enough cells to be steadier than the micros.
const END_TO_END_TOLERANCE: f64 = 1.5;

/// Compares this run against the committed baseline and reports any
/// number that regressed beyond its tolerance band. With
/// `BENCH_CORE_RATCHET` set (CI), regressions fail the bench; locally
/// they only warn, since absolute wall-clock differs across machines.
fn ratchet(baseline_text: Option<&str>, micro: &[Measurement], total_s: f64) {
    let Some(text) = baseline_text else {
        eprintln!("ratchet: no committed baseline, skipping");
        return;
    };
    let mut regressions = Vec::new();
    for m in micro {
        let Some(base) = baseline_median_ns(text, &m.name) else {
            eprintln!("ratchet: no baseline for {} (new target)", m.name);
            continue;
        };
        let ratio = m.median_ns as f64 / base as f64;
        if ratio > MICRO_TOLERANCE {
            regressions.push(format!(
                "{}: {} ns vs baseline {base} ns ({ratio:.2}x > {MICRO_TOLERANCE}x)",
                m.name, m.median_ns
            ));
        }
    }
    if let Some(base_s) = baseline_total(text) {
        let ratio = total_s / base_s;
        if ratio > END_TO_END_TOLERANCE {
            regressions.push(format!(
                "end_to_end/quick_sweep: {total_s:.3} s vs baseline {base_s:.3} s \
                 ({ratio:.2}x > {END_TO_END_TOLERANCE}x)"
            ));
        }
    }
    if regressions.is_empty() {
        eprintln!("ratchet: all tracked numbers within tolerance");
        return;
    }
    for r in &regressions {
        eprintln!("ratchet REGRESSION: {r}");
    }
    if std::env::var("BENCH_CORE_RATCHET").is_ok() {
        eprintln!("ratchet: failing (BENCH_CORE_RATCHET set)");
        std::process::exit(1);
    }
    eprintln!("ratchet: warning only (set BENCH_CORE_RATCHET to enforce)");
}

/// Extracts one micro target's committed `median_ns` from the baseline
/// text (same hand-rolled scan as [`baseline_total`]; no JSON
/// dependency in this workspace — the file is machine-written by this
/// bench, so each key appears exactly once).
fn baseline_median_ns(text: &str, name: &str) -> Option<u64> {
    let tail = text.split(&format!("\"{name}\":")).nth(1)?;
    let tail = tail.split("\"median_ns\":").nth(1)?;
    let num: String = tail
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    num.parse().ok()
}

/// Extracts `end_to_end.total_wall_s` from baseline text.
fn baseline_total(text: &str) -> Option<f64> {
    let tail = text.split("\"total_wall_s\":").nth(1)?;
    let num: String = tail
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}

fn render_json(
    micro: &[Measurement],
    outputs: &[SweepOutput],
    total_s: f64,
    bare_s: f64,
    instrumented_s: f64,
) -> String {
    use std::fmt::Write;
    let mut j = String::new();
    // v3: the end-to-end sweep's overload cells moved to the shrunk
    // bench-tier horizon (scenario name `overload-bench`), so v2 wall
    // totals are not comparable; two fault-path micros were added.
    j.push_str("{\n  \"schema\": \"bench-core-v3\",\n  \"scale\": \"quick\",\n");
    let _ = writeln!(
        j,
        "  \"attribution\": {{\"bare_wall_s\": {bare_s:.6}, \"instrumented_wall_s\": {instrumented_s:.6}, \"overhead_ratio\": {:.4}}},",
        instrumented_s / bare_s
    );
    j.push_str("  \"micro\": {\n");
    for (i, m) in micro.iter().enumerate() {
        let _ = writeln!(
            j,
            "    \"{}\": {{\"median_ns\": {}, \"min_ns\": {}, \"samples\": {}}}{}",
            m.name,
            m.median_ns,
            m.min_ns,
            m.samples,
            if i + 1 < micro.len() { "," } else { "" }
        );
    }
    j.push_str("  },\n  \"end_to_end\": {\n");
    let _ = writeln!(j, "    \"total_wall_s\": {total_s:.6},");
    j.push_str("    \"scenarios\": [\n");
    for (si, out) in outputs.iter().enumerate() {
        let wall_us: u128 = out.stats.iter().map(|s| s.wall.as_micros()).sum();
        let _ = write!(
            j,
            "      {{\"scenario\": \"{}\", \"wall_us\": {wall_us}, \"cells\": [",
            out.name
        );
        for (ci, s) in out.stats.iter().enumerate() {
            let _ = write!(
                j,
                "{{\"cell\": \"{}\", \"wall_us\": {}}}{}",
                s.key,
                s.wall.as_micros(),
                if ci + 1 < out.stats.len() { ", " } else { "" }
            );
        }
        let _ = writeln!(j, "]}}{}", if si + 1 < outputs.len() { "," } else { "" });
    }
    j.push_str("    ]\n  }\n}\n");
    j
}
