//! Bench for the memory-isolation experiment (Figure 7, §4.4).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::mem_iso;
use experiments::Scale;
use spu_core::Scheme;

fn bench_mem_iso(c: &mut Criterion) {
    let result = mem_iso::run(Scale::Quick);
    eprintln!(
        "\n=== Memory isolation (quick scale) ===\n{}",
        result.format()
    );

    let mut group = c.benchmark_group("mem_iso");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        group.bench_function(format!("unbalanced/{scheme}"), |b| {
            b.iter(|| mem_iso::run_one(scheme, true, Scale::Quick))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mem_iso);
criterion_main!(benches);
