//! Substrate micro-benchmarks: event queue, scheduler picks, the fault
//! path, RNG, disk model, bandwidth tracker, and a small end-to-end
//! kernel run. The hot-path targets (event queue, scheduler pick, fault
//! path) live in [`bench::micro_targets`] and are shared with the
//! `core` bench that maintains the tracked `BENCH_core.json` baseline.

use bench::micro_targets;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use event_sim::{SimDuration, SimTime, SplitMix64};
use hp_disk::{DiskDevice, DiskModel, DiskRequest, RequestKind, SchedulerKind};
use smp_kernel::{Kernel, MachineConfig, Program};
use spu_core::{BandwidthTracker, Scheme, SpuId, SpuSet};

fn bench_event_queue(c: &mut Criterion) {
    micro_targets::bench_event_queue(c);
}

fn bench_scheduler_pick(c: &mut Criterion) {
    micro_targets::bench_scheduler_pick(c);
}

fn bench_scheduler_pick_512(c: &mut Criterion) {
    micro_targets::bench_scheduler_pick_512(c);
}

fn bench_fault_path(c: &mut Criterion) {
    micro_targets::bench_fault_path(c);
}

fn bench_fault_resident(c: &mut Criterion) {
    micro_targets::bench_fault_resident(c);
}

fn bench_swapin_batch(c: &mut Criterion) {
    micro_targets::bench_swapin_batch(c);
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/next_u64_1k", |b| {
        let mut r = SplitMix64::new(42);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc ^= r.next_u64();
            }
            black_box(acc)
        })
    });
}

fn bench_disk_model(c: &mut Criterion) {
    let model = DiskModel::hp97560();
    c.bench_function("disk/service_calc", |b| {
        b.iter(|| black_box(model.service(SimTime::from_millis(3), 500, 1_000_000, 64)))
    });
    c.bench_function("disk/device_100_requests", |b| {
        b.iter(|| {
            let mut d = DiskDevice::new(DiskModel::hp97560(), SchedulerKind::Hybrid, 4);
            let mut completion = None;
            for i in 0..100u64 {
                let r = DiskRequest::new(
                    SpuId::user((i % 2) as u32),
                    RequestKind::Read,
                    (i * 131_071) % 2_000_000,
                    8,
                );
                if let Some(cc) = d.submit(r, SimTime::ZERO) {
                    completion = Some(cc);
                }
            }
            let mut now = SimTime::ZERO;
            while let Some(cc) = completion {
                now = cc.at;
                completion = d.complete(now).1;
            }
            black_box(now)
        })
    });
}

fn bench_bw_tracker(c: &mut Criterion) {
    c.bench_function("bw_tracker/charge_and_check", |b| {
        let mut bw = BandwidthTracker::new(10, SimDuration::from_millis(500));
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let now = SimTime::from_micros(t * 100);
            bw.charge(SpuId::user((t % 8) as u32), 64, now);
            black_box(bw.fails_fairness(SpuId::user(0), 64.0, now))
        })
    });
}

fn bench_kernel_run(c: &mut Criterion) {
    c.bench_function("kernel/small_run", |b| {
        b.iter(|| {
            let cfg = MachineConfig::builder()
                .topology(2, 16, 1)
                .scheme(Scheme::PIso)
                .build()
                .unwrap();
            let mut k = Kernel::new(cfg, SpuSet::equal_users(2));
            let spin = Program::builder("spin")
                .compute(SimDuration::from_millis(100), 20)
                .build();
            k.spawn_at(SpuId::user(0), spin.clone(), Some("a"), SimTime::ZERO);
            k.spawn_at(SpuId::user(1), spin, Some("b"), SimTime::ZERO);
            black_box(k.run(SimTime::from_secs(5)).end_time)
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_scheduler_pick,
    bench_scheduler_pick_512,
    bench_fault_path,
    bench_fault_resident,
    bench_swapin_batch,
    bench_rng,
    bench_disk_model,
    bench_bw_tracker,
    bench_kernel_run
);
criterion_main!(benches);
