//! Benches for the design-choice ablations (§3.2, §3.3, §3.4).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::ablation;
use experiments::Scale;

fn bench_ablations(c: &mut Criterion) {
    let lock = ablation::lock_granularity(Scale::Quick);
    eprintln!(
        "\n=== Lock granularity ablation (quick scale) ===\n{}",
        lock.format()
    );

    let reserve = ablation::reserve_threshold_sweep(&[0.0, 0.04, 0.08, 0.16], Scale::Quick);
    eprintln!("{}", ablation::format_reserve_sweep(&reserve));

    let bw = ablation::bw_threshold_sweep(&[0.0, 16.0, 64.0, 256.0, f64::INFINITY], Scale::Quick);
    eprintln!("{}", ablation::format_bw_sweep(&bw));

    let ipi = ablation::ipi_revocation(Scale::Quick);
    eprintln!("{}", ipi.format());

    let net = experiments::net_bw::run(Scale::Quick);
    eprintln!("{}", net.format());

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("lock_granularity", |b| {
        b.iter(|| ablation::lock_granularity(Scale::Quick))
    });
    group.bench_function("reserve_sweep_point", |b| {
        b.iter(|| ablation::reserve_threshold_sweep(&[0.08], Scale::Quick))
    });
    group.bench_function("bw_sweep_point", |b| {
        b.iter(|| ablation::bw_threshold_sweep(&[64.0], Scale::Quick))
    });
    group.bench_function("ipi_revocation", |b| {
        b.iter(|| ablation::ipi_revocation(Scale::Quick))
    });
    group.bench_function("net_bw", |b| {
        b.iter(|| experiments::net_bw::run(Scale::Quick))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
