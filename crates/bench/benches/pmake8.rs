//! Bench for the Pmake8 experiment (Figures 2 and 3, §4.2).
//!
//! Prints the regenerated figures once, then times representative runs
//! at `Quick` scale (same structure as the paper's configuration,
//! smaller jobs).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::pmake8;
use experiments::Scale;
use spu_core::Scheme;

fn bench_pmake8(c: &mut Criterion) {
    let result = pmake8::run(Scale::Quick);
    eprintln!("\n=== Pmake8 (quick scale) ===\n{}", result.format());
    let points = experiments::scaling::run(&[1, 2, 3], Scale::Quick);
    eprintln!("{}", experiments::scaling::format(&points));

    let mut group = c.benchmark_group("pmake8");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        group.bench_function(format!("balanced/{scheme}"), |b| {
            b.iter(|| pmake8::run_one(scheme, false, Scale::Quick))
        });
        group.bench_function(format!("unbalanced/{scheme}"), |b| {
            b.iter(|| pmake8::run_one(scheme, true, Scale::Quick))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pmake8);
criterion_main!(benches);
