//! Bench for the disk-bandwidth experiments (Tables 3 and 4, §4.5).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::disk_bw;
use experiments::Scale;
use hp_disk::SchedulerKind;

fn bench_disk_bw(c: &mut Criterion) {
    let t3 = disk_bw::table3(Scale::Quick);
    eprintln!(
        "\n=== Table 3: pmake-copy (quick scale) ===\n{}",
        t3.format()
    );
    let t4 = disk_bw::table4(Scale::Quick);
    eprintln!(
        "=== Table 4: big-and-small copy (quick scale) ===\n{}",
        t4.format()
    );

    let mut group = c.benchmark_group("disk_bw");
    group.sample_size(10);
    for policy in SchedulerKind::ALL {
        group.bench_function(format!("pmake_copy/{}", policy.label()), |b| {
            b.iter(|| disk_bw::run_pmake_copy(policy, Scale::Quick))
        });
        group.bench_function(format!("big_small/{}", policy.label()), |b| {
            b.iter(|| disk_bw::run_big_small(policy, Scale::Quick))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_disk_bw);
criterion_main!(benches);
