//! Fault isolation: response times under injected faults (robustness
//! extension of §4).
//!
//! A 4-SPU machine runs a foreground job stream on SPU 0 while SPU 3
//! (or its disk) suffers each fault class in turn — transient I/O
//! errors, a degraded device, CPU loss, process crashes, a fork bomb.
//! The tables show each scheme's foreground mean/p95 against its own
//! fault-free baseline: PIso holds the foreground steady through every
//! background-scoped fault while SMP bleeds.
//!
//! Run with: `cargo run --release --example fault_isolation`
//! (pass `--quick` for the reduced-scale variant)
//!
//! An instrumented PIso run under a seeded *random* fault plan is
//! exported to `results/`:
//! * `fault_isolation_metrics.jsonl` — metrics, counters (including
//!   `fault.*`, `audit.*`, `kernel.errors`) and resource series;
//! * `fault_isolation_trace.json` — Chrome trace-event JSON with
//!   `fault:*` instant events marking each injection.

use perf_isolation::experiments::fault_isolation;
use perf_isolation::experiments::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    println!("Running the fault matrix under SMP, Quo, and PIso ({scale:?} scale)...\n");
    let result = fault_isolation::run(scale);
    println!("{}", result.format());
    println!(
        "\nExpectation: under PIso the foreground Δ stays within ~10% for every\n\
         background-scoped fault; under SMP the fork bomb and crash classes bleed\n\
         into the foreground. `audits` must be 0 everywhere.\n"
    );

    println!("Instrumented PIso run under a seeded random fault plan...");
    let inst = fault_isolation::run_instrumented(42, scale);
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/fault_isolation_metrics.jsonl", &inst.metrics_jsonl)
        .expect("write metrics export");
    std::fs::write("results/fault_isolation_trace.json", &inst.chrome_trace)
        .expect("write trace export");
    println!(
        "Wrote results/fault_isolation_metrics.jsonl ({} lines) and\n\
         results/fault_isolation_trace.json ({} KiB) — open the latter in Perfetto.",
        inst.metrics_jsonl.lines().count(),
        inst.chrome_trace.len() / 1024
    );
}
