//! Fault isolation: response times under injected faults (robustness
//! extension of §4).
//!
//! A 4-SPU machine runs a foreground job stream on SPU 0 while SPU 3
//! (or its disk) suffers each fault class in turn — transient I/O
//! errors, a degraded device, CPU loss, process crashes, a fork bomb.
//! The tables show each scheme's foreground mean/p95 against its own
//! fault-free baseline: PIso holds the foreground steady through every
//! background-scoped fault while SMP bleeds.
//!
//! Run with: `cargo run --release --example fault_isolation`
//! (pass `--quick` for the reduced-scale variant, `--threads N` to run
//! the 18 scheme × fault cells in parallel)
//!
//! An instrumented PIso run under a seeded *random* fault plan is
//! exported to `results/`:
//! * `fault_isolation_metrics.jsonl` — metrics, counters (including
//!   `fault.*`, `audit.*`, `kernel.errors`) and resource series;
//! * `fault_isolation_trace.json` — Chrome trace-event JSON with
//!   `fault:*` instant events marking each injection.

use perf_isolation::experiments::fault_isolation::{self, FaultIsolationScenario};
use perf_isolation::experiments::report::export;
use perf_isolation::experiments::sweep::{self, SweepOptions};
use perf_isolation::experiments::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let opts = SweepOptions::new().threads(sweep::threads_from_args(&args));
    println!("Running the fault matrix under SMP, Quo, and PIso ({scale:?} scale)...\n");
    let result = sweep::run_scenario(&FaultIsolationScenario { scale }, &opts).report;
    println!("{}", result.format());
    println!(
        "\nExpectation: under PIso the foreground Δ stays within ~10% for every\n\
         background-scoped fault; under SMP the fork bomb and crash classes bleed\n\
         into the foreground. `audits` must be 0 everywhere.\n"
    );

    println!("Instrumented PIso run under a seeded random fault plan...");
    let inst = fault_isolation::run_instrumented(42, scale);
    export(
        "results",
        &[
            ("fault_isolation_metrics.jsonl", &inst.metrics_jsonl),
            ("fault_isolation_trace.json", &inst.chrome_trace),
        ],
    )
    .expect("write results/");
    println!("Open the trace in Perfetto (https://ui.perfetto.dev).");
}
