//! Reproduces Figures 4 and 5 (§4.3): the CPU-isolation workload.
//!
//! Ocean (a barrier-synchronized parallel app) in one SPU vs six EDA
//! simulators in the other, on an eight-way machine.
//!
//! Run with: `cargo run --release --example cpu_isolation`
//! (pass `--quick` for the reduced-scale variant, `--threads N` to run
//! the three scheme cells in parallel)

use perf_isolation::experiments::cpu_iso::CpuIsoScenario;
use perf_isolation::experiments::sweep::{self, SweepOptions};
use perf_isolation::experiments::tables;
use perf_isolation::experiments::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let opts = SweepOptions::new().threads(sweep::threads_from_args(&args));
    println!("{}", tables::figure4());
    println!("Running the CPU-isolation workload ({scale:?} scale)...\n");
    let result = sweep::run_scenario(&CpuIsoScenario { scale }, &opts).report;
    println!("{}", result.format());
    println!(
        "Paper shape: Ocean — Quo best, PIso close behind, SMP worst\n\
         (interference); Flashlite/VCS — Quo markedly worse than SMP,\n\
         PIso comparable to SMP (idle Ocean CPUs are borrowed)."
    );
}
