//! Reproduces Figures 4 and 5 (§4.3): the CPU-isolation workload.
//!
//! Ocean (a barrier-synchronized parallel app) in one SPU vs six EDA
//! simulators in the other, on an eight-way machine.
//!
//! Run with: `cargo run --release --example cpu_isolation`
//! (pass `--quick` for the reduced-scale variant)

use perf_isolation::experiments::cpu_iso;
use perf_isolation::experiments::tables;
use perf_isolation::experiments::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    println!("{}", tables::figure4());
    println!("Running the CPU-isolation workload ({scale:?} scale)...\n");
    let result = cpu_iso::run(scale);
    println!("{}", result.format());
    println!(
        "Paper shape: Ocean — Quo best, PIso close behind, SMP worst\n\
         (interference); Flashlite/VCS — Quo markedly worse than SMP,\n\
         PIso comparable to SMP (idle Ocean CPUs are borrowed)."
    );
}
