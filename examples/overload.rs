//! Overload robustness: open-loop traffic, admission control, and load
//! shedding (robustness extension).
//!
//! A latency-sensitive victim SPU (60% entitlement, a modest Poisson
//! request stream against a 30 ms target) shares the machine with an
//! antagonist SPU whose open-loop request stream is driven past its
//! entitled capacity (1.0× → 2.5×). The matrix crosses every scheme
//! with every shed policy: isolation decides whether the victim feels
//! the flood at all, and shedding decides whether the antagonist's own
//! goodput survives its overload or collapses into the metastable
//! queue-growth / retry-storm regime.
//!
//! Run with: `cargo run --release --example overload`
//! (pass `--quick` for the reduced-scale variant, `--threads N` to run
//! the 24 scheme × policy × load cells in parallel, `--cpus N` to rerun
//! the matrix on an N-CPU machine — rates and admission caps scale
//! linearly, so the overload factors and expected regimes carry over)
//!
//! An instrumented PIso/deadline-aware run at 2.5× is exported to
//! `results/`:
//! * `overload_metrics.jsonl` — counters, resource series, per-SPU SLO
//!   rows and the per-SPU request/admission report;
//! * `overload_trace.json` — Chrome trace-event JSON;
//! * `overload_matrix.json` — the full matrix, one JSON document (the
//!   CI artifact).

use perf_isolation::experiments::overload::{self, OverloadScenario};
use perf_isolation::experiments::report::export;
use perf_isolation::experiments::sweep::{self, SweepOptions};
use perf_isolation::experiments::Scale;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == name {
            return iter.next().cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let cpus: usize = flag_value(&args, "--cpus")
        .and_then(|v| v.parse().ok())
        .unwrap_or(overload::SEED_CPUS);
    let opts = SweepOptions::new().threads(sweep::threads_from_args(&args));
    println!(
        "Running the overload matrix: scheme x shed policy x load \
         ({scale:?} scale, {cpus} CPUs)...\n"
    );
    let result = sweep::run_scenario(&OverloadScenario::at(scale, cpus), &opts).report;
    println!("{}", result.format());
    println!(
        "\nExpectation: at 2.5x the no-shed antagonist queue goes metastable —\n\
         every request is served long past its deadline and goodput collapses —\n\
         while deadline-aware shedding keeps serving the requests that still\n\
         count. The victim's p99 blows through its target under SMP but never\n\
         moves under PIso, whatever the antagonist does.\n"
    );

    if cpus != overload::SEED_CPUS {
        // The instrumented run and its exports are pinned to the seed
        // machine; a scaled rerun just writes its own matrix artifact.
        let name = format!("overload_matrix_{cpus}cpu.json");
        export(
            "results",
            &[(&name, &overload::overload_matrix_json(&result))],
        )
        .expect("write results/");
        println!("wrote results/{name}");
        return;
    }

    println!("Instrumented PIso run (deadline-aware, 2.5x), SLO + sampling + trace on...");
    let inst = overload::run_instrumented(scale);
    println!("\n{}", inst.metrics.slo().format_table());
    export(
        "results",
        &[
            ("overload_metrics.jsonl", &inst.metrics_jsonl),
            ("overload_trace.json", &inst.chrome_trace),
            (
                "overload_matrix.json",
                &overload::overload_matrix_json(&result),
            ),
        ],
    )
    .expect("write results/");
    println!("Open the trace in Perfetto (https://ui.perfetto.dev).");
}
