//! Overload robustness: open-loop traffic, admission control, and load
//! shedding (robustness extension).
//!
//! A latency-sensitive victim SPU (60% entitlement, a modest Poisson
//! request stream against a 30 ms target) shares the machine with an
//! antagonist SPU whose open-loop request stream is driven past its
//! entitled capacity (1.0× → 2.5×). The matrix crosses every scheme
//! with every shed policy: isolation decides whether the victim feels
//! the flood at all, and shedding decides whether the antagonist's own
//! goodput survives its overload or collapses into the metastable
//! queue-growth / retry-storm regime.
//!
//! Run with: `cargo run --release --example overload`
//! (pass `--quick` for the reduced-scale variant, `--threads N` to run
//! the 24 scheme × policy × load cells in parallel)
//!
//! An instrumented PIso/deadline-aware run at 2.5× is exported to
//! `results/`:
//! * `overload_metrics.jsonl` — counters, resource series, per-SPU SLO
//!   rows and the per-SPU request/admission report;
//! * `overload_trace.json` — Chrome trace-event JSON;
//! * `overload_matrix.json` — the full matrix, one JSON document (the
//!   CI artifact).

use perf_isolation::experiments::overload::{self, OverloadScenario};
use perf_isolation::experiments::report::export;
use perf_isolation::experiments::sweep::{self, SweepOptions};
use perf_isolation::experiments::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let opts = SweepOptions::new().threads(sweep::threads_from_args(&args));
    println!("Running the overload matrix: scheme x shed policy x load ({scale:?} scale)...\n");
    let result = sweep::run_scenario(&OverloadScenario { scale }, &opts).report;
    println!("{}", result.format());
    println!(
        "\nExpectation: at 2.5x the no-shed antagonist queue goes metastable —\n\
         every request is served long past its deadline and goodput collapses —\n\
         while deadline-aware shedding keeps serving the requests that still\n\
         count. The victim's p99 blows through its target under SMP but never\n\
         moves under PIso, whatever the antagonist does.\n"
    );

    println!("Instrumented PIso run (deadline-aware, 2.5x), SLO + sampling + trace on...");
    let inst = overload::run_instrumented(scale);
    println!("\n{}", inst.metrics.slo().format_table());
    export(
        "results",
        &[
            ("overload_metrics.jsonl", &inst.metrics_jsonl),
            ("overload_trace.json", &inst.chrome_trace),
            (
                "overload_matrix.json",
                &overload::overload_matrix_json(&result),
            ),
        ],
    )
    .expect("write results/");
    println!("Open the trace in Perfetto (https://ui.perfetto.dev).");
}
