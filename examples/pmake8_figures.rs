//! Reproduces Figures 1, 2 and 3 (§4.2): the Pmake8 workload.
//!
//! Eight users on an eight-way machine; the unbalanced configuration
//! adds a second pmake job to four of them. Figure 2 shows isolation
//! (the light SPUs are unaffected under Quo/PIso), Figure 3 shows
//! sharing (the heavy SPUs do better under PIso than Quo).
//!
//! Run with: `cargo run --release --example pmake8_figures`
//! (pass `--quick` for the reduced-scale variant, `--threads N` to run
//! the six scheme × balance cells in parallel)
//!
//! Besides the text tables, an instrumented PIso run of the unbalanced
//! configuration is exported to `results/`:
//! * `pmake8_metrics.jsonl` — run header, per-job records, counters,
//!   latency histograms and the per-SPU (entitled, allowed, used) series
//!   for CPU, memory and disk;
//! * `pmake8_trace.json` — Chrome trace-event JSON, loadable in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`.

use perf_isolation::experiments::pmake8::{self, Pmake8Scenario};
use perf_isolation::experiments::report::export;
use perf_isolation::experiments::sweep::{self, SweepOptions};
use perf_isolation::experiments::tables;
use perf_isolation::experiments::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let opts = SweepOptions::new().threads(sweep::threads_from_args(&args));
    println!("{}", tables::figure1());
    println!("Running the Pmake8 workload under SMP, Quo, and PIso ({scale:?} scale)...\n");
    let result = sweep::run_scenario(&Pmake8Scenario { scale }, &opts).report;
    println!("{}", result.format());
    println!(
        "Paper shape: Fig 2 — SMP unbalanced ≈ 156, Quo/PIso unbalanced ≈ 100;\n\
         Fig 3 — SMP 156, Quo 187, PIso ≈ 146.\n"
    );

    println!("Instrumented PIso run (trace + 100 ms sampler)...");
    let inst = pmake8::run_instrumented(scale);
    export(
        "results",
        &[
            ("pmake8_metrics.jsonl", &inst.metrics_jsonl),
            ("pmake8_trace.json", &inst.chrome_trace),
        ],
    )
    .expect("write results/");
    println!("Open the trace in Perfetto (https://ui.perfetto.dev).");
}
