//! Network-bandwidth isolation (extension).
//!
//! The paper does not implement network isolation but specifies it
//! precisely: "the implementation would be similar to that of disk
//! bandwidth, without the complication of head position" (§5). This
//! example runs a bulk transfer against an interactive RPC stream on a
//! shared 100 Mb/s NIC under FCFS and under the §3.3 fairness
//! criterion.
//!
//! Run with: `cargo run --release --example network_bandwidth`
//! (pass `--quick` for the reduced-scale variant, `--threads N` to run
//! the two scheduler cells in parallel)

use perf_isolation::experiments::net_bw::NetBwScenario;
use perf_isolation::experiments::sweep::{self, SweepOptions};
use perf_isolation::experiments::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let opts = SweepOptions::new().threads(sweep::threads_from_args(&args));
    println!("Running the network-bandwidth scenario ({scale:?} scale)...\n");
    let t = sweep::run_scenario(&NetBwScenario { scale }, &opts).report;
    println!("{}", t.format());
    println!(
        "Expected shape: under FCFS the interactive stream's packets wait\n\
         behind the bulk sender's queue; the fairness criterion interleaves\n\
         them at a negligible cost to the bulk transfer — the same outcome\n\
         the disk scheduler produces, minus the seek trade-off."
    );
}
