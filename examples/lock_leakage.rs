//! Lock leakage: cross-SPU interference through kernel locks (§3.4).
//!
//! An antagonist SPU hammers the root-inode lock with pathname lookups
//! while a latency-sensitive victim SPU runs staggered read/compute
//! jobs against a 10 ms response target. The matrix crosses every
//! scheme with both lock modes (exclusive mutex vs the paper's
//! multi-reader fix) and reads the kernel's interference attribution:
//! the antagonist→victim `lock.root` cell is the §3.4 leak, nonzero
//! under SMP, smaller once PIso pins the antagonist to its half of the
//! machine, and collapsed to zero by reader-writer lookups.
//!
//! Run with: `cargo run --release --example lock_leakage`
//! (pass `--quick` for the reduced-scale variant, `--threads N` to run
//! the 6 scheme × lock-mode cells in parallel)
//!
//! An instrumented PIso/exclusive run is exported to `results/`:
//! * `lock_leakage_metrics.jsonl` — counters, resource series, the
//!   interference matrix and the per-SPU SLO rows;
//! * `lock_leakage_trace.json` — Chrome trace-event JSON where every
//!   contended lock acquisition is a named `lock-wait:*` span;
//! * `lock_leakage_matrix.json` — the interference matrix alone, one
//!   JSON document (the CI artifact).

use perf_isolation::experiments::lock_leakage::{self, LockLeakageScenario};
use perf_isolation::experiments::report::export;
use perf_isolation::experiments::sweep::{self, SweepOptions};
use perf_isolation::experiments::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let opts = SweepOptions::new().threads(sweep::threads_from_args(&args));
    println!("Running the lock-leakage matrix under SMP, Quo, and PIso ({scale:?} scale)...\n");
    let result = sweep::run_scenario(&LockLeakageScenario { scale }, &opts).report;
    println!("{}", result.format());
    println!(
        "\nExpectation: the antagonist→victim wait is largest under SMP, shrinks\n\
         once PIso confines the antagonist to its own CPUs, and vanishes under\n\
         the reader-writer mode — where the victim also meets its 10 ms target.\n"
    );

    println!("Instrumented PIso run (exclusive mode), attribution + SLO + trace on...");
    let inst = lock_leakage::run_instrumented(scale);
    println!("\n{}", inst.metrics.interference().format_table());
    println!("{}", inst.metrics.slo().format_table());
    export(
        "results",
        &[
            ("lock_leakage_metrics.jsonl", &inst.metrics_jsonl),
            ("lock_leakage_trace.json", &inst.chrome_trace),
            ("lock_leakage_matrix.json", &inst.matrix_json),
        ],
    )
    .expect("write results/");
    println!("Open the trace in Perfetto (https://ui.perfetto.dev).");
}
