//! Quickstart: build a machine, attach two SPUs, and watch performance
//! isolation work.
//!
//! A "victim" user runs one modest job; a "hog" user floods the machine
//! with compute. We run the same scenario under all three allocation
//! schemes (Table 2) and print the victim's and hog's response times:
//! under `SMP` the victim suffers, under `Quota` the hog is crippled,
//! under `PIso` the victim is protected *and* the hog still borrows the
//! idle capacity it can get.
//!
//! Run with: `cargo run --example quickstart`

use event_sim::{SimDuration, SimTime};
use perf_isolation::core::{Scheme, SpuId, SpuSet};
use perf_isolation::kernel::{Kernel, MachineConfig, Program};

fn main() {
    println!("Performance Isolation quickstart");
    println!("2 CPUs, 32 MB, two SPUs: a victim (1 job) and a hog (6 jobs)\n");

    println!(
        "{:<6} {:>14} {:>14}",
        "scheme", "victim resp(s)", "hog mean(s)"
    );
    for scheme in Scheme::ALL {
        let cfg = MachineConfig::new(2, 32, 1).with_scheme(scheme);
        let spus = SpuSet::equal_users(2).named(0, "victim").named(1, "hog");
        let mut kernel = Kernel::new(cfg, spus);

        // The victim's job: 300 ms of compute over a small working set.
        let victim_job = Program::builder("victim-job")
            .alloc(64)
            .compute(SimDuration::from_millis(300), 64)
            .build();
        kernel.spawn_at(SpuId::user(0), victim_job, Some("victim"), SimTime::ZERO);

        // The hog: six compute jobs, far more than its half of the
        // machine can serve.
        for i in 0..6 {
            let job = Program::builder("hog-job")
                .compute(SimDuration::from_millis(300), 0)
                .build();
            kernel.spawn_at(
                SpuId::user(1),
                job,
                Some(&format!("hog-{i}")),
                SimTime::ZERO,
            );
        }

        let metrics = kernel.run(SimTime::from_secs(60));
        assert!(metrics.completed, "run hit the time cap");
        println!(
            "{:<6} {:>14.3} {:>14.3}",
            scheme.label(),
            metrics.mean_response_secs("victim").expect("victim ran"),
            metrics.mean_response_secs("hog").expect("hogs ran"),
        );
    }

    println!();
    println!("SMP:  the victim is slowed by the hog's load (no isolation).");
    println!("Quo:  the victim is protected, but the hog cannot use the");
    println!("      victim's idle CPU once the victim finishes.");
    println!("PIso: the victim is protected AND the hog borrows idle");
    println!("      capacity — isolation plus sharing.");
}
