//! Quickstart: build a machine, attach two SPUs, and watch performance
//! isolation work — expressed as a custom [`Scenario`] so the same
//! three-scheme matrix runs through the deterministic sweep engine.
//!
//! A "victim" user runs one modest job; a "hog" user floods the machine
//! with compute. We run the same scenario under all three allocation
//! schemes (Table 2) and print the victim's and hog's response times:
//! under `SMP` the victim suffers, under `Quota` the hog is crippled,
//! under `PIso` the victim is protected *and* the hog still borrows the
//! idle capacity it can get.
//!
//! Run with: `cargo run --example quickstart [-- --threads 3]`

use perf_isolation::core::{Scheme, SpuId, SpuSet};
use perf_isolation::experiments::sweep::{self, Scenario, SweepOptions, Value};
use perf_isolation::kernel::{Kernel, MachineConfig, Program};
use perf_isolation::sim::{SimDuration, SimTime};

/// The quickstart matrix: one cell per scheme, each measuring the
/// victim's and the hog's mean response on the same two-SPU machine.
struct Quickstart;

/// Builds the machine and job mix for one scheme. Booting is cheap and
/// deterministic, so the fingerprint can hash the booted kernel itself.
fn boot(scheme: Scheme) -> Kernel {
    let cfg = MachineConfig::builder()
        .topology(2, 32, 1)
        .scheme(scheme)
        .build()
        .unwrap();
    let spus = SpuSet::equal_users(2).named(0, "victim").named(1, "hog");
    let mut kernel = Kernel::new(cfg, spus);

    // The victim's job: 300 ms of compute over a small working set.
    let victim_job = Program::builder("victim-job")
        .alloc(64)
        .compute(SimDuration::from_millis(300), 64)
        .build();
    kernel.spawn_at(SpuId::user(0), victim_job, Some("victim"), SimTime::ZERO);

    // The hog: six compute jobs, far more than its half of the
    // machine can serve.
    for i in 0..6 {
        let job = Program::builder("hog-job")
            .compute(SimDuration::from_millis(300), 0)
            .build();
        kernel.spawn_at(
            SpuId::user(1),
            job,
            Some(&format!("hog-{i}")),
            SimTime::ZERO,
        );
    }
    kernel
}

impl Scenario for Quickstart {
    type Cell = Scheme;
    type Outcome = Value;
    type Report = Vec<(Scheme, f64, f64)>;

    fn name(&self) -> &'static str {
        "quickstart"
    }

    fn cells(&self) -> Vec<Scheme> {
        Scheme::ALL.to_vec()
    }

    fn cell_key(&self, scheme: &Scheme) -> String {
        scheme.label().to_lowercase()
    }

    fn cell_fingerprint(&self, &scheme: &Scheme) -> u64 {
        sweep::kernel_cell_fingerprint(&boot(scheme), SimTime::from_secs(60), "quickstart-v1")
    }

    fn run_cell(&self, &scheme: &Scheme) -> Value {
        let mut kernel = boot(scheme);
        let metrics = kernel.run(SimTime::from_secs(60));
        assert!(metrics.completed, "run hit the time cap");
        Value::list(vec![
            Value::F(metrics.mean_response_secs("victim").expect("victim ran")),
            Value::F(metrics.mean_response_secs("hog").expect("hogs ran")),
        ])
    }

    fn reduce(&self, outcomes: Vec<Value>) -> Self::Report {
        self.cells()
            .into_iter()
            .zip(outcomes)
            .map(|(scheme, v)| {
                let l = v.as_list().expect("victim/hog pair");
                (scheme, l[0].as_f64().unwrap(), l[1].as_f64().unwrap())
            })
            .collect()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions::new().threads(sweep::threads_from_args(&args));

    println!("Performance Isolation quickstart");
    println!("2 CPUs, 32 MB, two SPUs: a victim (1 job) and a hog (6 jobs)\n");

    let run = sweep::run_scenario(&Quickstart, &opts);
    println!(
        "{:<6} {:>14} {:>14}",
        "scheme", "victim resp(s)", "hog mean(s)"
    );
    for (scheme, victim, hog) in run.report {
        println!("{:<6} {:>14.3} {:>14.3}", scheme.label(), victim, hog);
    }

    println!();
    println!("SMP:  the victim is slowed by the hog's load (no isolation).");
    println!("Quo:  the victim is protected, but the hog cannot use the");
    println!("      victim's idle CPU once the victim finishes.");
    println!("PIso: the victim is protected AND the hog borrows idle");
    println!("      capacity — isolation plus sharing.");
}
