//! Reproduces Tables 3 and 4 (§4.5): disk-bandwidth isolation.
//!
//! Two SPUs share one HP 97560 (half seek latency, as in the paper).
//! Table 3: a scattered pmake vs a 20 MB sequential copy. Table 4: a
//! 500 KB copy vs a 5 MB copy. Three disk schedulers: Pos (C-SCAN),
//! Iso (blind fairness), PIso (hybrid).
//!
//! Run with: `cargo run --release --example disk_bandwidth`
//! (pass `--quick` for the reduced-scale variant, `--threads N` to run
//! the six workload × scheduler cells in parallel)

use perf_isolation::experiments::disk_bw::DiskBwScenario;
use perf_isolation::experiments::sweep::{self, SweepOptions};
use perf_isolation::experiments::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let opts = SweepOptions::new().threads(sweep::threads_from_args(&args));
    println!("Running the disk-bandwidth workloads ({scale:?} scale)...\n");
    let report = sweep::run_scenario(&DiskBwScenario::both(scale), &opts).report;
    println!(
        "Table 3: the pmake-copy workload\n{}",
        report.tables[0].format()
    );
    println!(
        "Paper shape: PIso cuts the pmake's response ~39% and per-request\n\
         wait ~76% vs Pos; the copy pays ~23%; seek stays near Pos.\n"
    );
    println!(
        "Table 4: the big-and-small-copy workload\n{}",
        report.tables[1].format()
    );
    println!(
        "Paper shape: under Pos the big copy locks out the small one; both\n\
         fairness policies fix that, but blind Iso pays ~30% extra seek\n\
         latency while PIso keeps seek near the Pos level and gives the\n\
         small copy its best response."
    );
}
