//! Reproduces Tables 3 and 4 (§4.5): disk-bandwidth isolation.
//!
//! Two SPUs share one HP 97560 (half seek latency, as in the paper).
//! Table 3: a scattered pmake vs a 20 MB sequential copy. Table 4: a
//! 500 KB copy vs a 5 MB copy. Three disk schedulers: Pos (C-SCAN),
//! Iso (blind fairness), PIso (hybrid).
//!
//! Run with: `cargo run --release --example disk_bandwidth`
//! (pass `--quick` for the reduced-scale variant)

use perf_isolation::experiments::disk_bw;
use perf_isolation::experiments::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    println!("Running the disk-bandwidth workloads ({scale:?} scale)...\n");
    let t3 = disk_bw::table3(scale);
    println!("Table 3: the pmake-copy workload\n{}", t3.format());
    println!(
        "Paper shape: PIso cuts the pmake's response ~39% and per-request\n\
         wait ~76% vs Pos; the copy pays ~23%; seek stays near Pos.\n"
    );
    let t4 = disk_bw::table4(scale);
    println!("Table 4: the big-and-small-copy workload\n{}", t4.format());
    println!(
        "Paper shape: under Pos the big copy locks out the small one; both\n\
         fairness policies fix that, but blind Iso pays ~30% extra seek\n\
         latency while PIso keeps seek near the Pos level and gives the\n\
         small copy its best response."
    );
}
