//! Server consolidation: the scenario the paper's introduction
//! motivates ("a compute server often has to serve many masters"),
//! expressed as a custom [`Scenario`] over the three schemes.
//!
//! A latency-sensitive OLTP database and a batch analytics job (full
//! table scans plus heavy compute) are consolidated onto one machine
//! with a shared disk. Under `SMP` the analytics scan's sequential
//! stream and memory appetite wreck transaction latency; under `Quota`
//! the analytics job is crippled whenever the database idles; `PIso`
//! keeps transactions fast while the analytics job soaks up every idle
//! cycle.
//!
//! Run with: `cargo run --release --example server_consolidation [-- --threads 3]`

use perf_isolation::core::{Scheme, SpuId, SpuSet};
use perf_isolation::experiments::sweep::{self, Scenario, SweepOptions, Value};
use perf_isolation::kernel::{Kernel, MachineConfig, Program};
use perf_isolation::sim::{SimDuration, SimTime};
use perf_isolation::workloads::OltpConfig;

/// One cell per scheme; each measures OLTP response, OLTP disk wait,
/// and analytics response on the consolidated machine.
struct Consolidation;

/// Builds the two-tenant machine for one scheme.
fn boot(scheme: Scheme) -> Kernel {
    let cfg = MachineConfig::builder()
        .topology(4, 64, 1)
        .scheme(scheme)
        .seek_scale(0.5)
        .build()
        .unwrap();
    let spus = SpuSet::equal_users(2).named(0, "oltp").named(1, "batch");
    let mut k = Kernel::new(cfg, spus);

    // Tenant 1: the database.
    let oltp = OltpConfig::default().build(&mut k, 0);
    k.spawn_at(SpuId::user(0), oltp, Some("oltp"), SimTime::ZERO);

    // Tenant 2: analytics — repeatedly scan a 50 MB extract (too big
    // to stay cached in its share of the 64 MB machine) with
    // aggregation compute between scans. The scan keeps a sequential
    // request stream on the shared disk for the whole run.
    let extract = k.create_file(0, 50 * 1024 * 1024, 0);
    let mut ab = Program::builder("analytics").alloc(500);
    for _ in 0..3 {
        ab = ab
            .read(extract, 0, 50 * 1024 * 1024)
            .compute(SimDuration::from_millis(2000), 500);
    }
    k.spawn_at(SpuId::user(1), ab.build(), Some("analytics"), SimTime::ZERO);
    k
}

impl Scenario for Consolidation {
    type Cell = Scheme;
    type Outcome = Value;
    type Report = Vec<(Scheme, f64, f64, f64)>;

    fn name(&self) -> &'static str {
        "server-consolidation"
    }

    fn cells(&self) -> Vec<Scheme> {
        Scheme::ALL.to_vec()
    }

    fn cell_key(&self, scheme: &Scheme) -> String {
        scheme.label().to_lowercase()
    }

    fn cell_fingerprint(&self, &scheme: &Scheme) -> u64 {
        sweep::kernel_cell_fingerprint(
            &boot(scheme),
            SimTime::from_secs(600),
            "server-consolidation-v1",
        )
    }

    fn run_cell(&self, &scheme: &Scheme) -> Value {
        let mut k = boot(scheme);
        let m = k.run(SimTime::from_secs(600));
        assert!(m.completed, "{scheme}: hit the cap");
        Value::list(vec![
            Value::F(m.mean_response_secs("oltp").expect("oltp ran")),
            Value::F(m.disks[0].stream(SpuId::user(0)).mean_wait_ms()),
            Value::F(m.mean_response_secs("analytics").expect("analytics ran")),
        ])
    }

    fn reduce(&self, outcomes: Vec<Value>) -> Self::Report {
        self.cells()
            .into_iter()
            .zip(outcomes)
            .map(|(scheme, v)| {
                let l = v.as_list().expect("oltp/wait/analytics triple");
                (
                    scheme,
                    l[0].as_f64().unwrap(),
                    l[1].as_f64().unwrap(),
                    l[2].as_f64().unwrap(),
                )
            })
            .collect()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions::new().threads(sweep::threads_from_args(&args));

    println!("Server consolidation: OLTP database vs batch analytics");
    println!("4 CPUs, 64 MB, one shared disk (half seek latency)\n");
    println!(
        "{:<6} {:>16} {:>18} {:>18}",
        "scheme", "oltp resp (s)", "oltp disk wait(ms)", "analytics resp (s)"
    );
    for (scheme, oltp, wait_ms, analytics) in sweep::run_scenario(&Consolidation, &opts).report {
        println!(
            "{:<6} {:>16.3} {:>18.2} {:>18.3}",
            scheme.label(),
            oltp,
            wait_ms,
            analytics,
        );
    }
    println!(
        "\nUnder SMP the analytics scan locks the database's scattered reads\n\
         out of the disk queue. PIso gives the database its best latency —\n\
         better even than fixed quotas, whose blind-fair disk scheduling\n\
         wastes seeks — while analytics lands between the Quota and SMP\n\
         extremes by borrowing whatever the database leaves idle."
    );
}
