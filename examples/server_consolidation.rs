//! Server consolidation: the scenario the paper's introduction
//! motivates ("a compute server often has to serve many masters"),
//! grown to the multi-tenant shape the flat SPU model cannot express
//! (hierarchy extension).
//!
//! Two tenants share the machine. Tenant `acme` runs a
//! latency-sensitive service (`vic`) next to a noisy batch sibling
//! (`noisy`) whose open-loop fork-bursts are driven past its
//! entitlement; tenant `bell` runs its own service (`vic2`) and an idle
//! `spare`. The matrix compares three ways of drawing the isolation
//! domains — SMP (none), one flat PIso SPU per tenant, and the
//! hierarchical per-service leaves under tenant ceilings — at 1.0× and
//! 4.0× antagonist load. Flat per-tenant SPUs protect `bell` but let
//! `acme`'s own sibling wreck `vic`; the hierarchy protects both
//! levels.
//!
//! Run with: `cargo run --release --example server_consolidation`
//! (pass `--quick` for the reduced-scale variant, `--threads N` to run
//! the 6 layout × load cells in parallel)
//!
//! An instrumented hierarchical run at 4.0× is exported to `results/`:
//! * `consolidation_metrics.jsonl` — counters (including the
//!   `spu.tree.*` tenant rollups), series, per-service SLO rows;
//! * `consolidation_trace.json` — Chrome trace-event JSON with
//!   tenant/service process names;
//! * `consolidation_matrix.json` — the full matrix (the CI artifact).

use perf_isolation::experiments::consolidation::{self, ConsolidationScenario};
use perf_isolation::experiments::report::export;
use perf_isolation::experiments::sweep::{self, SweepOptions};
use perf_isolation::experiments::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let opts = SweepOptions::new().threads(sweep::threads_from_args(&args));
    println!("Running the consolidation matrix: layout x load ({scale:?} scale)...\n");
    let result = sweep::run_scenario(&ConsolidationScenario::seed(scale), &opts).report;
    println!("{}", result.format());
    println!(
        "\nExpectation: at 4.0x SMP leaks the antagonist's fork-bursts into\n\
         both tenants. One flat SPU per tenant walls off tenant bell but\n\
         mixes acme's own service with its noisy sibling — vic's p99 blows\n\
         through the target. Only the hierarchy holds both lines:\n\
         per-service leaves under per-tenant ceilings.\n"
    );

    println!("Instrumented hierarchical run (4.0x), SLO + sampling + trace on...");
    let inst = consolidation::run_instrumented(scale);
    println!("\n{}", inst.metrics.slo().format_table());
    println!("tenant rollup (leaf -> tenant):");
    for (tenant, jobs, violated, p99) in &inst.tenants {
        println!(
            "  {tenant:<6} {jobs:>6} jobs {violated:>5} violated  worst p99 {:>7.2} ms",
            p99 * 1e3
        );
    }
    export(
        "results",
        &[
            ("consolidation_metrics.jsonl", &inst.metrics_jsonl),
            ("consolidation_trace.json", &inst.chrome_trace),
            (
                "consolidation_matrix.json",
                &consolidation::consolidation_matrix_json(&result),
            ),
        ],
    )
    .expect("write results/");
    println!("\nwrote results/consolidation_{{metrics.jsonl,trace.json,matrix.json}}");
    println!("Open the trace in Perfetto (https://ui.perfetto.dev).");
}
