//! Load-scaling sweep (extension): the §2.1 isolation guarantee under
//! growing background load.
//!
//! The Pmake8 machine with the light SPUs fixed at one job each and the
//! heavy SPUs swept from 1 to 4 jobs each (8 to 20 jobs total on 8
//! CPUs). The guarantee predicts flat light-SPU response lines for Quo
//! and PIso and a rising line for SMP.
//!
//! Run with: `cargo run --release --example load_scaling`
//! (pass `--quick` for the reduced-scale variant, `--threads N` to run
//! the twelve level × scheme cells in parallel)

use perf_isolation::experiments::scaling::{self, ScalingScenario};
use perf_isolation::experiments::sweep::{self, SweepOptions};
use perf_isolation::experiments::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let opts = SweepOptions::new().threads(sweep::threads_from_args(&args));
    println!("Sweeping background load on the Pmake8 machine ({scale:?} scale)...\n");
    let report = sweep::run_scenario(&ScalingScenario::standard(scale), &opts).report;
    println!("{}", scaling::format(&report.points));
    println!(
        "\"If the resource requirements of an SPU are less than its allocated\n\
         fraction of the machine, the SPU should see no degradation in\n\
         performance, regardless of the load placed on the system by others.\"\n\
         (§2.1) — the Quo and PIso columns should stay at ~100."
    );
}
