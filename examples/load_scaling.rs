//! Scaling sweeps (extension): the §2.1 isolation guarantee under
//! growing background load — and growing machines.
//!
//! Default mode: the Pmake8 machine with the light SPUs fixed at one
//! job each and the heavy SPUs swept from 1 to 4 jobs each (8 to 20
//! jobs total on 8 CPUs). The guarantee predicts flat light-SPU
//! response lines for Quo and PIso and a rising line for SMP.
//!
//! `--cpu-scale` mode: the machine-size ladder instead — 8/32/128/512
//! CPUs × {2×, 4×} SPU oversubscription under PIso, asserting the
//! light-SPU response stays flat as the machine grows, and reporting
//! each cell's simulation throughput (simulated seconds per wall
//! second).
//!
//! Run with: `cargo run --release --example load_scaling`
//! (pass `--quick` for the reduced-scale variant, `--threads N` for
//! parallel cells; with `--cpu-scale`: `--max-cpus N` truncates the
//! ladder and `--out FILE` writes the per-cell outcome JSONL artifact)

use perf_isolation::experiments::scaling::{self, CpuScaleScenario, ScalingScenario};
use perf_isolation::experiments::sweep::{self, Render, SweepOptions};
use perf_isolation::experiments::Scale;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == name {
            return iter.next().cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let opts = SweepOptions::new().threads(sweep::threads_from_args(&args));

    if args.iter().any(|a| a == "--cpu-scale") {
        let max_cpus = flag_value(&args, "--max-cpus")
            .and_then(|v| v.parse().ok())
            .unwrap_or(usize::MAX);
        let scenario = CpuScaleScenario::capped(scale, max_cpus);
        println!("Sweeping machine size under PIso ({scale:?} scale)...\n");
        let run = sweep::run_scenario(&scenario, &opts);
        println!("{}", run.report.render());
        println!("sim-throughput (simulated seconds per wall second):");
        println!(
            "{}",
            scaling::throughput_summary(&run.report.rows, &run.stats)
        );
        let violations = run.report.isolation_violations();
        if let Some(path) = flag_value(&args, "--out") {
            std::fs::write(&path, &run.outcomes_jsonl).expect("write outcome artifact");
            println!("wrote {path}");
        }
        assert!(
            violations.is_empty(),
            "isolation violated at scale: {violations:?}"
        );
        return;
    }

    println!("Sweeping background load on the Pmake8 machine ({scale:?} scale)...\n");
    let report = sweep::run_scenario(&ScalingScenario::standard(scale), &opts).report;
    println!("{}", scaling::format(&report.points));
    println!(
        "\"If the resource requirements of an SPU are less than its allocated\n\
         fraction of the machine, the SPU should see no degradation in\n\
         performance, regardless of the load placed on the system by others.\"\n\
         (§2.1) — the Quo and PIso columns should stay at ~100."
    );
}
