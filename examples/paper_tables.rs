//! Drives every experiment matrix in the repo — the paper's static
//! tables plus all nine simulated harnesses — through the sweep
//! engine, and exports the per-cell outcomes and sweep counters under
//! `results/`.
//!
//! All ten matrices' cells are drained by **one** worker pool
//! (`sweep::run_pool`), so there is no barrier between matrices. The
//! output is byte-identical for any `--threads` value and any cache
//! state; only the timing lines (which go to stdout, never into result
//! files) vary between runs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example paper_tables -- [--quick] [--threads N] [--no-cache]
//! cargo run --release --example paper_tables -- --quick --compare-threads 4
//! ```
//!
//! `--compare-threads N` is the CI mode: it runs the full matrix twice
//! (serial, then N workers), both uncached, asserts the outputs are
//! byte-identical, and prints the measured speedup.

use std::time::Instant;

use perf_isolation::experiments::report::export;
use perf_isolation::experiments::sweep::{self, SweepOptions, SweepOutput};
use perf_isolation::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    if let Some(n) = compare_threads(&args) {
        compare(scale, n);
        return;
    }

    let mut opts = SweepOptions::new().threads(sweep::threads_from_args(&args));
    if !args.iter().any(|a| a == "--no-cache") {
        opts = opts.cache_dir(SweepOptions::default_cache());
    }

    let mut outcomes = String::new();
    let mut counters = String::new();
    for out in sweep::run_pool(&sweep::all_scenarios(scale), &opts) {
        println!("{}", out.text);
        println!("[{}] per-cell timing:\n{}", out.name, out.timing_summary());
        outcomes.push_str(&out.outcomes_jsonl);
        counters.push_str(&out.counters_jsonl());
    }
    export(
        "results",
        &[
            ("sweep_outcomes.jsonl", &outcomes),
            ("sweep_counters.jsonl", &counters),
        ],
    )
    .expect("write results/");
}

/// Parses `--compare-threads N` (either `--compare-threads 4` or
/// `--compare-threads=4`).
fn compare_threads(args: &[String]) -> Option<usize> {
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "--compare-threads" {
            return iter.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = a.strip_prefix("--compare-threads=") {
            return v.parse().ok();
        }
    }
    None
}

/// Runs every scenario serially and then with `threads` workers (both
/// uncached), asserts byte-identical output, and prints the speedup.
fn compare(scale: Scale, threads: usize) {
    let run_all = |opts: &SweepOptions| -> (Vec<SweepOutput>, f64) {
        let start = Instant::now();
        let outputs = sweep::run_pool(&sweep::all_scenarios(scale), opts);
        (outputs, start.elapsed().as_secs_f64())
    };

    println!("sweep comparison at scale={} (uncached)", scale.label());
    let (serial, serial_wall) = run_all(&SweepOptions::new());
    let (parallel, parallel_wall) = run_all(&SweepOptions::new().threads(threads));

    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(
            a.text, b.text,
            "[{}] parallel report text diverged from serial",
            a.name
        );
        assert_eq!(
            a.outcomes_jsonl, b.outcomes_jsonl,
            "[{}] parallel outcome export diverged from serial",
            a.name
        );
        println!("[{}] per-cell timing ({threads} threads):", b.name);
        println!("{}", b.timing_summary());
    }
    let cells: usize = serial.iter().map(|o| o.stats.len()).sum();
    println!(
        "{cells} cells: serial {serial_wall:.2}s, {threads} threads {parallel_wall:.2}s \
         -> speedup {:.2}x (outputs byte-identical)",
        serial_wall / parallel_wall
    );
}
