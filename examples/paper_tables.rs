//! Prints the paper's configuration tables and SPU-layout figures:
//! Table 1 (workloads), Table 2 (schemes), Figures 1, 4 and 6.
//!
//! Run with: `cargo run --example paper_tables`

use perf_isolation::experiments::tables;

fn main() {
    println!("{}", tables::table1());
    println!("{}", tables::table2());
    println!("{}", tables::figure1());
    println!("{}", tables::figure4());
    println!("{}", tables::figure6());
}
