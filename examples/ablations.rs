//! Runs the design-choice ablations the paper calls out:
//!
//! * §3.4 — root inode lock: mutex vs multiple-readers (the kernel fix
//!   the authors report improved base IRIX response time 20-30% on some
//!   four-processor workloads);
//! * §3.2 — the memory Reserve Threshold sweep;
//! * §3.3 — the disk BW-difference threshold sweep (round-robin → pure
//!   C-SCAN interpolation);
//! * §3.1 — tick-based vs IPI-based revocation of loaned CPUs.
//!
//! Run with: `cargo run --release --example ablations`
//! (pass `--quick` for the reduced-scale variant)

use perf_isolation::experiments::ablation;
use perf_isolation::experiments::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };

    println!("Running ablations ({scale:?} scale)...\n");

    let lock = ablation::lock_granularity(scale);
    println!("{}", lock.format());

    let ipi = ablation::ipi_revocation(scale);
    println!("{}", ipi.format());

    let reserve = ablation::reserve_threshold_sweep(&[0.0, 0.02, 0.04, 0.08, 0.16], scale);
    println!("{}", ablation::format_reserve_sweep(&reserve));

    let bw = ablation::bw_threshold_sweep(&[0.0, 16.0, 64.0, 256.0, 1024.0, f64::INFINITY], scale);
    println!("{}", ablation::format_bw_sweep(&bw));
    println!(
        "§3.3: \"Smaller values imply better isolation, with a choice of zero\n\
         resulting in round-robin scheduling. Larger values imply smaller seek\n\
         times, and a very large value results in the normal disk-head-position\n\
         scheduling.\""
    );
}
