//! Runs the design-choice ablations the paper calls out:
//!
//! * §3.4 — root inode lock: mutex vs multiple-readers (the kernel fix
//!   the authors report improved base IRIX response time 20-30% on some
//!   four-processor workloads);
//! * §3.2 — the memory Reserve Threshold sweep;
//! * §3.3 — the disk BW-difference threshold sweep (round-robin → pure
//!   C-SCAN interpolation);
//! * §3.1 — tick-based vs IPI-based revocation of loaned CPUs.
//!
//! Run with: `cargo run --release --example ablations`
//! (pass `--quick` for the reduced-scale variant, `--threads N` to run
//! the 15 ablation cells in parallel)

use perf_isolation::experiments::ablation::AblationScenario;
use perf_isolation::experiments::sweep::{self, Render, SweepOptions};
use perf_isolation::experiments::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let opts = SweepOptions::new().threads(sweep::threads_from_args(&args));

    println!("Running ablations ({scale:?} scale)...\n");
    let report = sweep::run_scenario(&AblationScenario::standard(scale), &opts).report;
    println!("{}", report.render());
    println!(
        "§3.3: \"Smaller values imply better isolation, with a choice of zero\n\
         resulting in round-robin scheduling. Larger values imply smaller seek\n\
         times, and a very large value results in the normal disk-head-position\n\
         scheduling.\""
    );
}
