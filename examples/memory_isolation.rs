//! Reproduces Figures 6 and 7 (§4.4): the memory-isolation workload.
//!
//! Two SPUs on a four-CPU, 16 MB machine running pmake jobs sized so one
//! job fits an SPU's share of memory but two jobs thrash it.
//!
//! Run with: `cargo run --release --example memory_isolation`
//! (pass `--quick` for the reduced-scale variant, `--threads N` to run
//! the scheme × balance cells in parallel)
//!
//! Also exports `results/mem_iso_series.jsonl`: the sampled per-SPU
//! `(entitled, allowed, used)` series of an instrumented PIso run —
//! the memory rows show `allowed` rising above `entitled` while idle
//! pages are on loan and dropping back on revocation.

use perf_isolation::experiments::mem_iso::{self, MemIsoScenario};
use perf_isolation::experiments::report::export;
use perf_isolation::experiments::sweep::{self, SweepOptions};
use perf_isolation::experiments::tables;
use perf_isolation::experiments::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let opts = SweepOptions::new().threads(sweep::threads_from_args(&args));
    println!("{}", tables::figure6());
    println!("Running the memory-isolation workload ({scale:?} scale)...\n");
    let result = sweep::run_scenario(&MemIsoScenario { scale }, &opts).report;
    println!("{}", result.format());
    println!(
        "SPU2 major faults (unbalanced): SMP={} Quo={} PIso={}",
        result.spu2_major_faults[0], result.spu2_major_faults[1], result.spu2_major_faults[2]
    );
    println!(
        "\nPaper shape: isolation — SMP degrades SPU1 ~45%, PIso ~13%, Quo ~0;\n\
         sharing — Quo degrades SPU2 ~145% vs balanced (100% CPU + 45% memory\n\
         thrash), PIso close to SMP.\n"
    );

    let (_, series) = mem_iso::run_instrumented(scale);
    export("results", &[("mem_iso_series.jsonl", &series)]).expect("write results/");
}
