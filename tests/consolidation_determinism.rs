//! Determinism and bit-compatibility of the SPU hierarchy: the
//! consolidation matrix's exports are byte-identical however many
//! worker threads produce them (sibling-first lending makes the same
//! decisions in any interleaving), and a depth-1 tree — every service
//! its own singleton tenant — replays the flat machine exactly.

use perf_isolation::core::{Scheme, SpuId, SpuSet, SpuTree};
use perf_isolation::experiments::consolidation::ConsolidationScenario;
use perf_isolation::experiments::sweep::{run_scenario, Render, SweepOptions};
use perf_isolation::kernel::{metrics_jsonl, Kernel, MachineConfig, Program};
use perf_isolation::sim::{SimDuration, SimTime};
use perf_isolation::Scale;

#[test]
fn consolidation_matrix_is_byte_identical_at_1_vs_4_threads() {
    let scenario = ConsolidationScenario::seed(Scale::Quick);
    let serial = run_scenario(&scenario, &SweepOptions::new());
    let parallel = run_scenario(&scenario, &SweepOptions::new().threads(4));
    assert_eq!(
        serial.outcomes_jsonl, parallel.outcomes_jsonl,
        "consolidation outcome export diverged at 4 threads"
    );
    assert_eq!(
        serial.report.render(),
        parallel.report.render(),
        "consolidation rendered report diverged at 4 threads"
    );
}

/// Boots an uneven PIso machine: odd SPUs oversubscribed so idle
/// even-SPU CPUs keep lending to (and revoking from) their overloaded
/// neighbours, exercising every lending decision the hierarchy touches.
fn boot_uneven(weights: &[u32], tree: Option<SpuTree>) -> Kernel {
    let cfg = MachineConfig::builder()
        .topology(8, 96, 1)
        .scheme(Scheme::PIso)
        .build()
        .expect("valid machine");
    let mut set = SpuSet::with_weights(weights);
    if let Some(tree) = tree {
        set = set.with_tree(tree);
    }
    let mut k = Kernel::new(cfg, set);
    let prog = Program::builder("job")
        .compute(SimDuration::from_millis(120), 8)
        .build();
    for s in 0..weights.len() as u32 {
        let jobs = if s % 2 == 0 { 1 } else { 6 };
        for j in 0..jobs {
            k.spawn_at(
                SpuId::user(s),
                prog.clone(),
                Some(&format!("j{s}-{j}")),
                SimTime::ZERO,
            );
        }
    }
    k
}

/// Drops the tree-gated counter lines — the only export surface a tree
/// is *allowed* to add to an otherwise identical run.
fn strip_tree_lines(jsonl: &str) -> String {
    jsonl
        .lines()
        .filter(|l| !l.contains("\"spu.tree."))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[test]
fn depth1_singleton_tenants_replay_the_flat_machine_byte_identically() {
    for weights in [vec![1u32, 1], vec![1, 2, 1], vec![3, 1, 2, 1]] {
        let run = |tree: Option<SpuTree>| {
            let mut k = boot_uneven(&weights, tree);
            let m = k.run(SimTime::from_secs(60));
            assert!(m.completed, "weights {weights:?} hit the cap");
            (m.end_time, metrics_jsonl(&m))
        };
        let (flat_end, flat_jsonl) = run(None);
        let depth1 = SpuTree::new(
            weights
                .iter()
                .enumerate()
                .map(|(i, &w)| (format!("t{i}"), w, vec![i as u32]))
                .collect(),
        );
        let (hier_end, hier_jsonl) = run(Some(depth1));
        // Singleton tenants have no siblings: every steal, loan,
        // revocation and page-lending decision must replay the flat
        // machine exactly — same end time, same jobs, same counters.
        assert_eq!(flat_end, hier_end, "weights {weights:?}: end time moved");
        assert_eq!(
            strip_tree_lines(&flat_jsonl),
            strip_tree_lines(&hier_jsonl),
            "weights {weights:?}: depth-1 tree diverged from flat exports"
        );
        // The flat export had no tree lines to strip; the depth-1 run
        // gained only the gated tree counters.
        assert_eq!(flat_jsonl, strip_tree_lines(&flat_jsonl));
        assert!(hier_jsonl.contains("\"spu.tree.tenants\""));
    }
}
