//! End-to-end robustness claim: with faults injected into a background
//! SPU, performance isolation keeps the foreground's p95 response within
//! 10% of the fault-free baseline, while SMP lets at least one fault
//! class (the fork bomb) bleed through measurably. Every run in the
//! matrix must finish with a clean ledger audit.

use perf_isolation::core::Scheme;
use perf_isolation::experiments::fault_isolation::{run, FaultClass};
use perf_isolation::experiments::Scale;

#[test]
fn faults_in_background_spus_do_not_reach_piso_foreground() {
    let r = run(Scale::Quick);

    // Recovery policies keep every run in the matrix completing, and the
    // ledger auditor never finds an inconsistency.
    for row in &r.rows {
        assert!(
            row.completed,
            "{}/{} hit the time cap",
            row.scheme,
            row.fault.name()
        );
        assert_eq!(
            row.audit_violations,
            0,
            "{}/{}: ledger audit violations",
            row.scheme,
            row.fault.name()
        );
        assert_eq!(
            row.kernel_errors,
            0,
            "{}/{}: unexpected kernel errors",
            row.scheme,
            row.fault.name()
        );
    }

    // The transient-error class is absorbed entirely by retries: no
    // failure surfaces to any process under any scheme.
    for &scheme in &Scheme::ALL {
        let row = r.row(scheme, FaultClass::DiskErrors);
        assert!(row.io_retries > 0, "{scheme}: errors must be retried");
        assert_eq!(row.io_failures, 0, "{scheme}: retries must absorb them");
    }

    // PIso: the foreground p95 stays within 10% of the fault-free
    // baseline for every fault class scoped to the background.
    let piso_base = r.row(Scheme::PIso, FaultClass::None).fg_p95;
    for fault in FaultClass::ALL {
        if !fault.background_scoped() {
            continue;
        }
        let p95 = r.row(Scheme::PIso, fault).fg_p95;
        assert!(
            p95 <= piso_base * 1.10,
            "PIso foreground p95 moved >10% under {}: {p95:.3} vs {piso_base:.3}",
            fault.name()
        );
    }

    // SMP: the fork bomb in the background SPU degrades the foreground
    // measurably — this is the contrast the isolation buys.
    let smp_base = r.row(Scheme::Smp, FaultClass::None).fg_p95;
    let smp_bomb = r.row(Scheme::Smp, FaultClass::ForkBomb).fg_p95;
    assert!(
        smp_bomb > smp_base * 1.3,
        "SMP must bleed under the fork bomb: {smp_bomb:.3} vs base {smp_base:.3}"
    );
}
