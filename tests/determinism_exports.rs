//! Determinism of the observability exports: the simulation is keyed by
//! simulated time only (no wall clock, no unordered maps), so two
//! identical instrumented runs must serialize to byte-identical strings.

use perf_isolation::experiments::lock_leakage;
use perf_isolation::experiments::pmake8;
use perf_isolation::experiments::Scale;

#[test]
fn instrumented_runs_export_identically() {
    let a = pmake8::run_instrumented(Scale::Quick);
    let b = pmake8::run_instrumented(Scale::Quick);

    assert!(!a.metrics_jsonl.is_empty());
    assert!(!a.chrome_trace.is_empty());
    assert_eq!(
        a.metrics_jsonl, b.metrics_jsonl,
        "JSONL metrics export is not deterministic"
    );
    assert_eq!(
        a.chrome_trace, b.chrome_trace,
        "Chrome trace export is not deterministic"
    );

    // The export carries real content: per-SPU series for all three
    // resources, counters, histograms.
    for needle in [
        "\"type\":\"sample\"",
        "\"resource\":\"cpu\"",
        "\"resource\":\"memory\"",
        "\"resource\":\"disk\"",
        "\"type\":\"counter\"",
        "\"type\":\"histogram\"",
        "\"name\":\"response\"",
    ] {
        assert!(
            a.metrics_jsonl.contains(needle),
            "metrics export misses {needle}"
        );
    }
    assert!(a.chrome_trace.contains("\"traceEvents\""));
    assert!(a.chrome_trace.contains("\"ph\":\"X\""));
}

#[test]
fn attribution_exports_are_deterministic() {
    // Same property with the interference attribution, SLO tracker and
    // lock-wait spans enabled: two runs, byte-identical exports.
    let a = lock_leakage::run_instrumented(Scale::Quick);
    let b = lock_leakage::run_instrumented(Scale::Quick);

    assert_eq!(
        a.metrics_jsonl, b.metrics_jsonl,
        "JSONL export with attribution enabled is not deterministic"
    );
    assert_eq!(
        a.chrome_trace, b.chrome_trace,
        "Chrome trace with lock-wait spans is not deterministic"
    );
    assert_eq!(
        a.matrix_json, b.matrix_json,
        "interference-matrix export is not deterministic"
    );

    for needle in [
        "\"type\":\"interference\"",
        "\"type\":\"lock_hold\"",
        "\"type\":\"slo\"",
        "\"type\":\"slo_sample\"",
        "\"channel\":\"lock.root\"",
    ] {
        assert!(
            a.metrics_jsonl.contains(needle),
            "metrics export misses {needle}"
        );
    }
    assert!(a.chrome_trace.contains("lock-wait:root"));
    assert!(a.matrix_json.contains("\"cells\""));
}
