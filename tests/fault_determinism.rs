//! Determinism of the fault-injection layer: faults are scheduled on the
//! simulated clock from a seeded plan, so an empty plan must be
//! indistinguishable from no plan at all, and a seeded random plan must
//! reproduce the exact same run every time.

use perf_isolation::core::{Scheme, SpuId, SpuSet};
use perf_isolation::experiments::{fault_isolation, Scale};
use perf_isolation::kernel::{Kernel, MachineConfig, Program};
use perf_isolation::sim::{FaultKind, FaultPlan, SimDuration, SimTime};
use std::sync::Arc;

/// A small two-SPU instrumented run: reads, compute, and enough work for
/// the sampler and trace buffer to carry real content.
fn instrumented(cfg: MachineConfig) -> (String, String) {
    let mut k = Kernel::new(cfg, SpuSet::equal_users(2));
    k.enable_trace(1 << 18);
    k.enable_sampling(SimDuration::from_millis(50));
    let f = k.create_file(0, 512 * 1024, 0);
    for u in 0..2 {
        let prog: Arc<Program> = Program::builder("job")
            .read(f, 0, 256 * 1024)
            .compute(SimDuration::from_millis(20), 8)
            .build();
        k.spawn_at(SpuId::user(u), prog, Some(&format!("u{u}")), SimTime::ZERO);
    }
    let m = k.run(SimTime::from_secs(60));
    assert!(m.completed);
    let jsonl = perf_isolation::kernel::metrics_jsonl(&m);
    let trace = perf_isolation::kernel::chrome_trace_json(k.trace(), k.spus(), &m.obsv);
    (jsonl, trace)
}

#[test]
fn empty_plan_is_byte_identical_to_no_plan() {
    let base = MachineConfig::builder()
        .topology(2, 32, 1)
        .scheme(Scheme::PIso)
        .build()
        .unwrap();
    let (jsonl_none, trace_none) = instrumented(base.clone());
    let (jsonl_empty, trace_empty) = instrumented(base.with_fault_plan(FaultPlan::new()));
    assert_eq!(
        jsonl_none, jsonl_empty,
        "an empty fault plan must leave the metrics export untouched"
    );
    assert_eq!(
        trace_none, trace_empty,
        "an empty fault plan must leave the trace export untouched"
    );
    // The fault counters are present (and zero) even without a plan, so
    // the exports above cannot differ merely by key presence.
    assert!(jsonl_none.contains("\"name\":\"fault.injected\""));
    assert!(jsonl_none.contains("\"name\":\"audit.checks\""));
}

#[test]
fn same_fault_seed_reproduces_the_run() {
    let run = |seed: u64| {
        let base = MachineConfig::builder()
            .topology(2, 32, 1)
            .scheme(Scheme::PIso)
            .build()
            .unwrap();
        let plan = FaultPlan::new()
            .at(
                SimTime::from_millis(5),
                FaultKind::DiskTransientErrors { disk: 0, count: 4 },
            )
            .at(
                SimTime::from_millis(20),
                FaultKind::ForkBomb {
                    user_spu: (seed % 2) as u32,
                    width: 2,
                    depth: 2,
                    burn: SimDuration::from_millis(5),
                    pages: 4,
                },
            );
        instrumented(base.with_fault_plan(plan))
    };
    let (a_jsonl, a_trace) = run(1);
    let (b_jsonl, b_trace) = run(1);
    assert_eq!(a_jsonl, b_jsonl, "same plan, different metrics export");
    assert_eq!(a_trace, b_trace, "same plan, different trace export");
    // Faults really fired: injections are counted and marked in the trace.
    assert!(a_jsonl.contains("\"name\":\"fault.injected\",\"value\":2"));
    assert!(a_trace.contains("fault:"));
    // A different plan produces a different run.
    let (c_jsonl, _) = run(2);
    assert_ne!(a_jsonl, c_jsonl, "different plans must be distinguishable");
}

#[test]
fn seeded_random_matrix_run_is_reproducible() {
    let a = fault_isolation::run_instrumented(1234, Scale::Quick);
    let b = fault_isolation::run_instrumented(1234, Scale::Quick);
    assert_eq!(
        a.metrics_jsonl, b.metrics_jsonl,
        "seeded random-plan run is not deterministic (metrics)"
    );
    assert_eq!(
        a.chrome_trace, b.chrome_trace,
        "seeded random-plan run is not deterministic (trace)"
    );
    assert!(!a.metrics_jsonl.is_empty() && !a.chrome_trace.is_empty());
}
