//! The obsv counter naming convention, enforced by a registry walk.
//!
//! Every counter is exported to JSONL keyed by its name, so names must
//! follow one scheme: lowercase dot-separated `module.metric` segments
//! (digits allowed — `disk.0.requests` — and underscores within a
//! segment). A counter that diverges would silently fork the export
//! namespace; this test boots a fully instrumented kernel so the walk
//! sees every family, including the interference counters.

use perf_isolation::experiments::Scale;
use perf_isolation::experiments::{consolidation, lock_leakage, overload};

/// `module.metric`: at least two non-empty segments, each of
/// `[a-z0-9_]`, separated by single dots.
fn well_formed(name: &str) -> bool {
    let segments: Vec<&str> = name.split('.').collect();
    segments.len() >= 2
        && segments.iter().all(|s| {
            !s.is_empty()
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

#[test]
fn counter_names_follow_the_module_metric_scheme() {
    let m = lock_leakage::run_instrumented(Scale::Quick).metrics;
    let names: Vec<String> = m
        .obsv
        .counters
        .iter()
        .map(|(name, _)| name.to_string())
        .collect();
    assert!(!names.is_empty(), "registry walk saw no counters");
    for name in &names {
        assert!(
            well_formed(name),
            "counter `{name}` breaks the lowercase dot-separated \
             `module.metric` naming scheme"
        );
    }
    // The walk must actually cover the interference family — if these
    // counters move out of the registry the check above goes blind.
    for family in ["interference.", "locks.", "sched.", "vm."] {
        assert!(
            names.iter().any(|n| n.starts_with(family)),
            "no `{family}*` counter in the registry walk"
        );
    }
}

#[test]
fn admission_counters_are_well_formed_and_present() {
    // The lock-leakage kernel runs with admission control off, so the
    // shed/timeout counters need their own instrumented walk: the
    // overload headline cell publishes the whole `requests.*` family.
    let m = overload::run_instrumented(Scale::Quick).metrics;
    let names: Vec<String> = m
        .obsv
        .counters
        .iter()
        .map(|(name, _)| name.to_string())
        .collect();
    for name in &names {
        assert!(
            well_formed(name),
            "counter `{name}` breaks the lowercase dot-separated \
             `module.metric` naming scheme"
        );
    }
    for counter in [
        "requests.arrivals",
        "requests.admitted",
        "requests.shed",
        "requests.expired",
        "requests.timeouts",
        "requests.retries",
        "requests.brownout_skips",
    ] {
        assert!(
            names.iter().any(|n| n == counter),
            "no `{counter}` counter in the registry walk"
        );
    }
}

#[test]
fn tree_counters_are_well_formed_and_present() {
    // The tenant rollups only exist on a hierarchical machine, so the
    // `spu.tree.*` family needs its own instrumented walk; tenant names
    // become counter segments, so this also pins the sanitisation of
    // user-chosen names into the `module.metric` scheme.
    let m = consolidation::run_instrumented(Scale::Quick).metrics;
    let names: Vec<String> = m
        .obsv
        .counters
        .iter()
        .map(|(name, _)| name.to_string())
        .collect();
    for name in &names {
        assert!(
            well_formed(name),
            "counter `{name}` breaks the lowercase dot-separated \
             `module.metric` naming scheme"
        );
    }
    for counter in [
        "spu.tree.tenants",
        "spu.tree.services",
        "spu.tree.acme.ceiling",
        "spu.tree.acme.cpu_nanos",
        "spu.tree.acme.pages_used",
        "spu.tree.bell.ceiling",
    ] {
        assert!(
            names.iter().any(|n| n == counter),
            "no `{counter}` counter in the registry walk"
        );
    }
}

#[test]
fn the_checker_itself_rejects_bad_names() {
    for bad in [
        "Locks.acquires",
        "locks",
        "locks..acquires",
        "locks.a-b",
        "locks.A",
        ".locks",
        "locks.",
    ] {
        assert!(!well_formed(bad), "checker accepted `{bad}`");
    }
    for good in [
        "locks.acquires",
        "disk.0.requests",
        "interference.lock_wait_nanos",
    ] {
        assert!(well_formed(good), "checker rejected `{good}`");
    }
}
