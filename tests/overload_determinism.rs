//! Seeded determinism of the overload stack: the arrival generator is a
//! pure function of its seed, and the overload matrix's exports are
//! byte-identical however many sweep threads produce them.

use event_sim::{ArrivalProcess, SimTime};
use perf_isolation::experiments::overload::{self, OverloadScenario};
use perf_isolation::experiments::sweep::{run_scenario, SweepOptions};
use perf_isolation::Scale;

fn processes() -> Vec<ArrivalProcess> {
    vec![
        ArrivalProcess::Poisson { rate_per_sec: 80.0 },
        ArrivalProcess::Mmpp {
            quiet_rate: 20.0,
            burst_rate: 400.0,
            quiet_dwell: event_sim::SimDuration::from_millis(200),
            burst_dwell: event_sim::SimDuration::from_millis(50),
        },
        ArrivalProcess::DiurnalRamp {
            start_rate: 10.0,
            end_rate: 300.0,
        },
    ]
}

#[test]
fn arrival_schedules_are_byte_identical_per_seed() {
    let horizon = SimTime::from_secs(3);
    for proc_ in processes() {
        for seed in [0u64, 7, 0xdead_beef] {
            let a = proc_.generate(seed, horizon).render();
            let b = proc_.generate(seed, horizon).render();
            assert_eq!(a, b, "{} schedule diverged for seed {seed}", proc_.name());
        }
        // And different seeds genuinely move the schedule.
        let a = proc_.generate(1, horizon).render();
        let b = proc_.generate(2, horizon).render();
        assert_ne!(a, b, "{} ignored its seed", proc_.name());
    }
}

#[test]
fn overload_exports_are_byte_identical_across_thread_counts() {
    let scenario = OverloadScenario::seed(Scale::Quick);
    let serial = run_scenario(&scenario, &SweepOptions::new());
    let parallel = run_scenario(&scenario, &SweepOptions::new().threads(4));
    assert_eq!(
        serial.outcomes_jsonl, parallel.outcomes_jsonl,
        "outcome export diverged at 4 threads"
    );
    assert_eq!(
        serial.report.format(),
        parallel.report.format(),
        "rendered report diverged at 4 threads"
    );
    assert_eq!(
        overload::overload_matrix_json(&serial.report),
        overload::overload_matrix_json(&parallel.report),
        "matrix JSON diverged at 4 threads"
    );
}
