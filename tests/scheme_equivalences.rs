//! Boundary-condition equivalences between the three schemes: places
//! where two schemes must coincide by construction. These pin down the
//! implementation against accidental divergence.

use perf_isolation::core::{Scheme, SpuId, SpuSet};
use perf_isolation::kernel::{Kernel, MachineConfig, Program};
use perf_isolation::sim::{SimDuration, SimTime};
use std::sync::Arc;

fn cpu_job(ms: u64) -> Arc<Program> {
    Program::builder("job")
        .compute(SimDuration::from_millis(ms), 0)
        .build()
}

/// With one SPU there is nobody to isolate from: all three schemes
/// must produce identical schedules for CPU-only work.
#[test]
fn single_spu_schemes_coincide() {
    let run = |scheme: Scheme| {
        let cfg = MachineConfig::builder()
            .topology(3, 16, 1)
            .scheme(scheme)
            .build()
            .unwrap();
        let mut k = Kernel::new(cfg, SpuSet::equal_users(1));
        for i in 0..5 {
            k.spawn_at(
                SpuId::user(0),
                cpu_job(150 + i * 40),
                Some(&format!("j{i}")),
                SimTime::from_millis(i * 5),
            );
        }
        let m = k.run(SimTime::from_secs(30));
        assert!(m.completed);
        m.end_time
    };
    let smp = run(Scheme::Smp);
    let quo = run(Scheme::Quota);
    let piso = run(Scheme::PIso);
    assert_eq!(smp, quo);
    assert_eq!(quo, piso);
}

/// When every SPU is saturated (no idle resources at all), PIso must
/// behave like Quota: there is nothing to lend.
#[test]
fn saturated_piso_equals_quota() {
    let run = |scheme: Scheme| {
        let cfg = MachineConfig::builder()
            .topology(2, 16, 1)
            .scheme(scheme)
            .build()
            .unwrap();
        let mut k = Kernel::new(cfg, SpuSet::equal_users(2));
        // Both SPUs have exactly continuous work for their one CPU.
        for s in 0..2u32 {
            for i in 0..3 {
                k.spawn_at(
                    SpuId::user(s),
                    cpu_job(200),
                    Some(&format!("s{s}j{i}")),
                    SimTime::ZERO,
                );
            }
        }
        let m = k.run(SimTime::from_secs(60));
        assert!(m.completed);
        (
            m.mean_response_of_spu(SpuId::user(0)).expect("spu0 ran"),
            m.mean_response_of_spu(SpuId::user(1)).expect("spu1 ran"),
        )
    };
    let (q0, q1) = run(Scheme::Quota);
    let (p0, p1) = run(Scheme::PIso);
    // Loans may shuffle slices around tick boundaries, so allow a small
    // tolerance rather than exact equality.
    assert!((q0 - p0).abs() / q0 < 0.05, "spu0: quo={q0} piso={p0}");
    assert!((q1 - p1).abs() / q1 < 0.05, "spu1: quo={q1} piso={p1}");
}

/// An idle machine gives a lone job identical latency under all schemes
/// when the job fits inside its own partition.
#[test]
fn lone_fitting_job_sees_no_scheme_difference() {
    let run = |scheme: Scheme| {
        let cfg = MachineConfig::builder()
            .topology(4, 32, 1)
            .scheme(scheme)
            .build()
            .unwrap();
        let mut k = Kernel::new(cfg, SpuSet::equal_users(4));
        k.spawn_at(SpuId::user(2), cpu_job(500), Some("lone"), SimTime::ZERO);
        let m = k.run(SimTime::from_secs(30));
        assert!(m.completed);
        m.job("lone").unwrap().response().unwrap()
    };
    let smp = run(Scheme::Smp);
    let quo = run(Scheme::Quota);
    let piso = run(Scheme::PIso);
    assert_eq!(smp, quo);
    assert_eq!(quo, piso);
}

/// Disabling sharing at the disk level: with a single stream, all three
/// disk schedulers service an identical request sequence.
#[test]
fn single_stream_disk_schedulers_coincide() {
    use perf_isolation::disk::{DiskDevice, DiskModel, DiskRequest, RequestKind, SchedulerKind};
    let serve = |kind: SchedulerKind| {
        let mut d = DiskDevice::new(DiskModel::hp97560(), kind, 3);
        let mut completion = None;
        for i in 0..40u64 {
            let r = DiskRequest::new(
                SpuId::user(0),
                RequestKind::Read,
                (i * 104_729) % 2_000_000,
                8,
            );
            if let Some(c) = d.submit(r, SimTime::ZERO) {
                completion = Some(c);
            }
        }
        let mut order = Vec::new();
        while let Some(c) = completion {
            let (done, next) = d.complete(c.at);
            order.push(done.req.start);
            completion = next;
        }
        order
    };
    let pos = serve(SchedulerKind::HeadPosition);
    let hybrid = serve(SchedulerKind::Hybrid);
    // A lone SPU can never fail the fairness criterion, so the hybrid
    // degenerates to pure C-SCAN.
    assert_eq!(pos, hybrid);
}

/// The CPU partition is irrelevant under SMP: different SPU counts with
/// identical total work produce identical makespans.
#[test]
fn smp_ignores_spu_structure() {
    let run = |spus: SpuSet, assign: &dyn Fn(usize) -> SpuId| {
        let cfg = MachineConfig::builder()
            .topology(2, 16, 1)
            .scheme(Scheme::Smp)
            .build()
            .unwrap();
        let mut k = Kernel::new(cfg, spus);
        for i in 0..4 {
            k.spawn_at(
                assign(i),
                cpu_job(100),
                Some(&format!("j{i}")),
                SimTime::ZERO,
            );
        }
        let m = k.run(SimTime::from_secs(30));
        assert!(m.completed);
        m.end_time
    };
    let one = run(SpuSet::equal_users(1), &|_| SpuId::user(0));
    let four = run(SpuSet::equal_users(4), &|i| SpuId::user(i as u32));
    assert_eq!(one, four);
}
