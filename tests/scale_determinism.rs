//! Determinism at machine scale: the cpu-scale sweep's exports are
//! byte-identical however many worker threads produce them, and the
//! per-CPU scheduler's steal/loan decisions replay exactly across runs
//! of the same 128-CPU machine.

use perf_isolation::core::{Scheme, SpuId};
use perf_isolation::experiments::scaling::CpuScaleScenario;
use perf_isolation::experiments::sweep::{run_scenario, Render, SweepOptions};
use perf_isolation::kernel::{metrics_jsonl, Kernel, MachineConfig, Program};
use perf_isolation::sim::{SimDuration, SimTime};
use perf_isolation::Scale;

#[test]
fn scale_sweep_is_byte_identical_at_1_vs_4_threads() {
    // The 8/32/128-CPU ladder (512 is covered by the scaling unit
    // tests; capping keeps this integration test fast).
    let scenario = CpuScaleScenario::capped(Scale::Quick, 128);
    let serial = run_scenario(&scenario, &SweepOptions::new());
    let parallel = run_scenario(&scenario, &SweepOptions::new().threads(4));
    assert_eq!(
        serial.outcomes_jsonl, parallel.outcomes_jsonl,
        "cpu-scale outcome export diverged at 4 threads"
    );
    assert_eq!(
        serial.report.render(),
        parallel.report.render(),
        "cpu-scale rendered report diverged at 4 threads"
    );
    assert!(
        serial.report.isolation_violations().is_empty(),
        "isolation violated: {:?}",
        serial.report.isolation_violations()
    );
}

/// Boots the 128-CPU steal-heavy machine: 32 SPUs of equal entitlement
/// (4 CPUs each), odd SPUs oversubscribed to twice their entitlement,
/// so idle even-SPU CPUs keep lending to (and revoking from) their
/// overloaded neighbours.
fn boot_steal_machine() -> Kernel {
    let (cfg, set) = MachineConfig::builder()
        .topology(128, 768, 1)
        .scheme(Scheme::PIso)
        .spus(32, 1)
        .build_with_spus()
        .expect("steal machine config is valid");
    let mut k = Kernel::new(cfg, set);
    let prog = Program::builder("steal-job")
        .compute(SimDuration::from_millis(240), 8)
        .build();
    for s in 0..32u32 {
        let jobs = if s % 2 == 0 { 1 } else { 8 };
        for j in 0..jobs {
            k.spawn_at(
                SpuId::user(s),
                prog.clone(),
                Some(&format!("steal-s{s}-{j}")),
                SimTime::ZERO,
            );
        }
    }
    k
}

#[test]
fn steal_decisions_replay_byte_identically_across_runs() {
    let run = || {
        let mut k = boot_steal_machine();
        let m = k.run(SimTime::from_secs(60));
        assert!(m.completed);
        (metrics_jsonl(&m), m)
    };
    let (a_jsonl, a) = run();
    let (b_jsonl, b) = run();
    // Every counter — dispatches, preemptions, loans, IPIs — and every
    // job response replays exactly; any nondeterministic steal pick
    // would show up here as a diverging schedule.
    assert_eq!(a_jsonl, b_jsonl, "steal-heavy run diverged across runs");
    assert_eq!(a.end_time, b.end_time);
    // The machine actually exercised the cross-SPU lending path.
    assert!(
        a.obsv.counters.get("sched.loans") > 0,
        "expected idle-CPU loans on the uneven machine"
    );
}
