//! Workspace-level guarantees of the sweep engine (the contract DESIGN.md
//! documents): for every scenario in the registry, parallel execution and
//! the result cache are invisible in the output — byte for byte.

use std::path::PathBuf;

use perf_isolation::experiments::net_bw::NetBwScenario;
use perf_isolation::experiments::scaling::CpuScaleScenario;
use perf_isolation::experiments::sweep::{
    all_scenarios, run_pool, run_scenario, Render, SweepOptions,
};
use perf_isolation::Scale;

/// A fresh per-test scratch directory under the system temp dir.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweep-int-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn every_scenario_is_byte_identical_across_thread_counts() {
    for scenario in all_scenarios(Scale::Quick) {
        let serial = scenario.run_boxed(&SweepOptions::new());
        assert_eq!(
            serial.stats.len(),
            scenario.cell_count(),
            "[{}] one stat per cell",
            serial.name
        );
        for threads in [2usize, 4, 8] {
            let parallel = scenario.run_boxed(&SweepOptions::new().threads(threads));
            assert_eq!(
                serial.text, parallel.text,
                "[{}] rendered report diverged at {threads} threads",
                serial.name
            );
            assert_eq!(
                serial.outcomes_jsonl, parallel.outcomes_jsonl,
                "[{}] outcome export diverged at {threads} threads",
                serial.name
            );
        }
    }
}

#[test]
fn pooled_execution_is_byte_identical_to_per_scenario_runs() {
    let scenarios = all_scenarios(Scale::Quick);
    let separate: Vec<_> = scenarios
        .iter()
        .map(|s| s.run_boxed(&SweepOptions::new()))
        .collect();
    for threads in [1usize, 4] {
        let pooled = run_pool(&scenarios, &SweepOptions::new().threads(threads));
        assert_eq!(pooled.len(), separate.len());
        for (a, b) in separate.iter().zip(&pooled) {
            assert_eq!(a.name, b.name);
            assert_eq!(
                a.text, b.text,
                "[{}] pooled report diverged at {threads} threads",
                a.name
            );
            assert_eq!(
                a.outcomes_jsonl, b.outcomes_jsonl,
                "[{}] pooled outcome export diverged at {threads} threads",
                a.name
            );
        }
    }
}

#[test]
fn cpu_scale_cache_round_trip_is_invisible() {
    // The cpu-scale scenario is deliberately not in `all_scenarios`
    // (the paper-tables golden predates it), so it gets its own cache
    // and thread-count coverage here.
    let dir = temp_dir("cpu-scale");
    let scenario = CpuScaleScenario::capped(Scale::Quick, 32);
    let opts = SweepOptions::new().cache_dir(&dir);
    let first = run_scenario(&scenario, &opts);
    assert!(first.stats.iter().all(|s| !s.cached));
    let second = run_scenario(&scenario, &opts.clone().threads(4));
    assert!(
        second.stats.iter().all(|s| s.cached),
        "second run must hit on every cell"
    );
    assert_eq!(first.outcomes_jsonl, second.outcomes_jsonl);
    assert_eq!(first.report.render(), second.report.render());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_round_trip_is_invisible_and_scale_invalidates() {
    let dir = temp_dir("cache");
    let quick = NetBwScenario {
        scale: Scale::Quick,
    };
    let opts = SweepOptions::new().cache_dir(&dir);

    let first = run_scenario(&quick, &opts);
    assert!(
        first.stats.iter().all(|s| !s.cached),
        "first run must miss an empty cache"
    );
    let second = run_scenario(&quick, &opts);
    assert!(
        second.stats.iter().all(|s| s.cached),
        "second run must hit on every cell"
    );
    assert_eq!(first.outcomes_jsonl, second.outcomes_jsonl);
    assert_eq!(
        first.report.format(),
        second.report.format(),
        "cached outcomes must render identically"
    );

    // Same cell keys, different fingerprints: the full-scale variant
    // must ignore the quick-scale entries.
    let full = NetBwScenario { scale: Scale::Full };
    let third = run_scenario(&full, &opts);
    assert!(
        third.stats.iter().all(|s| !s.cached),
        "changed scale must invalidate every cell"
    );
    let fourth = run_scenario(&full, &opts);
    assert!(fourth.stats.iter().all(|s| s.cached));
    assert_eq!(third.outcomes_jsonl, fourth.outcomes_jsonl);

    let _ = std::fs::remove_dir_all(&dir);
}
