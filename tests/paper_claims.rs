//! Cross-crate integration tests asserting the paper's headline claims
//! end-to-end (at quick scale; full-scale numbers live in
//! EXPERIMENTS.md).
//!
//! The abstract's claim: performance isolation provides
//! "workstation-like isolation under heavy load, SMP-like latency under
//! light load, and SMP-like throughput in all cases."

use perf_isolation::core::{Scheme, SpuId, SpuSet};
use perf_isolation::experiments::{cpu_iso, disk_bw, mem_iso, pmake8, Scale};
use perf_isolation::kernel::{Kernel, MachineConfig, Program};
use perf_isolation::sim::{SimDuration, SimTime};

#[test]
fn pmake8_isolation_and_sharing() {
    let r = pmake8::run(Scale::Quick);
    // Isolation (Figure 2): Quo and PIso keep the light SPUs' response
    // flat between balanced and unbalanced; SMP does not.
    let fig2 = r.fig2();
    assert!(fig2[0].2 > fig2[0].1 * 1.15, "SMP degrades: {fig2:?}");
    for &(scheme, b, u) in &fig2[1..] {
        assert!(
            (u - b).abs() / b < 0.12,
            "{scheme} broke isolation: {b} -> {u}"
        );
    }
    // Sharing (Figure 3): PIso beats Quo for the heavy SPUs and is close
    // to SMP.
    let fig3 = r.fig3();
    let (smp, quo, piso) = (fig3[0].1, fig3[1].1, fig3[2].1);
    assert!(quo > smp, "Quo must waste idle resources");
    assert!(piso < quo * 0.9, "PIso must share: {piso} vs {quo}");
    assert!(piso < smp * 1.25, "PIso must stay near SMP throughput");
}

#[test]
fn cpu_isolation_figure5() {
    let r = cpu_iso::run(Scale::Quick);
    let fig5 = r.fig5();
    let (quo, piso) = (fig5[1], fig5[2]);
    // Ocean protected by isolation; EDA jobs saved by sharing.
    assert!(piso.1 < 92.0, "PIso Ocean must beat SMP: {}", piso.1);
    assert!(quo.2 > piso.2, "Quo Flashlite must be worst");
    assert!(quo.3 > piso.3, "Quo VCS must be worst");
    assert!(piso.2 < 125.0 && piso.3 < 125.0, "PIso EDA near SMP");
}

#[test]
fn memory_isolation_figure7() {
    let r = mem_iso::run(Scale::Quick);
    let iso = r.isolation();
    let smp_delta = iso[0].2 - iso[0].1;
    let quo_delta = (iso[1].2 - iso[1].1).abs();
    let piso_delta = iso[2].2 - iso[2].1;
    assert!(smp_delta > 15.0, "SMP must degrade SPU1: {smp_delta}");
    assert!(quo_delta < 5.0, "Quo is the isolation ideal: {quo_delta}");
    assert!(
        piso_delta < smp_delta * 0.6,
        "PIso isolates: {piso_delta} vs {smp_delta}"
    );
    let sharing = r.sharing();
    assert!(sharing[1].1 > sharing[2].1, "Quo worst for the loaded SPU");
    assert!(sharing[1].1 > sharing[0].1, "Quo worse than SMP");
}

#[test]
fn disk_tables_3_and_4() {
    use perf_isolation::disk::SchedulerKind;
    let t3 = disk_bw::table3(Scale::Quick);
    let pos = t3.row(SchedulerKind::HeadPosition);
    let piso = t3.row(SchedulerKind::Hybrid);
    assert!(
        piso.job_a_response < pos.job_a_response * 0.85,
        "PIso must rescue the pmake from lockout"
    );
    assert!(
        piso.job_a_wait_ms < pos.job_a_wait_ms * 0.6,
        "PIso must slash the pmake's queue wait"
    );
    assert!(
        piso.job_b_response < pos.job_b_response * 1.7,
        "the copy's cost must be bounded"
    );

    let t4 = disk_bw::table4(Scale::Quick);
    let pos = t4.row(SchedulerKind::HeadPosition);
    let iso = t4.row(SchedulerKind::BlindFair);
    let piso = t4.row(SchedulerKind::Hybrid);
    assert!(
        pos.job_a_response > pos.job_b_response,
        "under Pos the big copy locks out the small one"
    );
    assert!(
        piso.job_a_response < iso.job_a_response,
        "PIso beats blind Iso"
    );
    assert!(
        iso.avg_seek_ms > piso.avg_seek_ms,
        "blind fairness pays extra seek"
    );
}

#[test]
fn unequal_entitlements_are_honoured() {
    // §2.1: "project A owns a third of the machine and project B owns
    // two thirds." Give SPU B twice SPU A's weight and saturate both:
    // B's jobs should finish roughly twice as fast per job. (Quota mode,
    // so sharing does not blur the entitlement boundary once one side
    // finishes.)
    let cfg = MachineConfig::builder()
        .topology(3, 32, 1)
        .scheme(Scheme::Quota)
        .build()
        .unwrap();
    let spus = SpuSet::with_weights(&[1, 2]);
    let mut k = Kernel::new(cfg, spus);
    for i in 0..3 {
        let p = Program::builder("a")
            .compute(SimDuration::from_millis(400), 0)
            .build();
        k.spawn_at(SpuId::user(0), p, Some(&format!("a{i}")), SimTime::ZERO);
        let p = Program::builder("b")
            .compute(SimDuration::from_millis(400), 0)
            .build();
        k.spawn_at(SpuId::user(1), p, Some(&format!("b{i}")), SimTime::ZERO);
    }
    let m = k.run(SimTime::from_secs(60));
    assert!(m.completed);
    let a = m.mean_response_secs("a").expect("a jobs ran");
    let b = m.mean_response_secs("b").expect("b jobs ran");
    // B has 2 CPUs for 3 jobs; A has 1 CPU for 3 jobs.
    assert!(a > b * 1.4, "weighted shares not honoured: a={a} b={b}");
}

#[test]
fn piso_offers_smp_latency_when_machine_idle() {
    // "SMP-like latency under light load": a single job under PIso on an
    // otherwise idle machine must match SMP's latency even beyond its
    // own partition, by borrowing idle CPUs.
    let run = |scheme: Scheme| {
        let cfg = MachineConfig::builder()
            .topology(4, 32, 1)
            .scheme(scheme)
            .build()
            .unwrap();
        let mut k = Kernel::new(cfg, SpuSet::equal_users(4));
        // A 3-way parallel job in one SPU whose share is just 1 CPU.
        let child = Program::builder("c")
            .compute(SimDuration::from_millis(300), 0)
            .build();
        let p = Program::builder("par")
            .fork(child.clone())
            .fork(child.clone())
            .fork(child)
            .wait_children()
            .build();
        k.spawn_at(SpuId::user(0), p, Some("par"), SimTime::ZERO);
        let m = k.run(SimTime::from_secs(60));
        assert!(m.completed);
        m.job("par").unwrap().response().unwrap().as_secs_f64()
    };
    let smp = run(Scheme::Smp);
    let quo = run(Scheme::Quota);
    let piso = run(Scheme::PIso);
    assert!(
        (piso - smp).abs() / smp < 0.15,
        "PIso light-load latency ≈ SMP: piso={piso} smp={smp}"
    );
    assert!(quo > piso * 1.5, "Quo cannot use idle CPUs: quo={quo}");
}

#[test]
fn full_run_metrics_are_deterministic() {
    let run = || {
        let r = pmake8::run_one(Scheme::PIso, true, Scale::Quick);
        format!("{:.9}/{:.9}", r.light_mean, r.heavy_mean)
    };
    assert_eq!(run(), run());
}
